package fl

import (
	"math"
	"testing"

	"github.com/niid-bench/niidbench/internal/data"
	"github.com/niid-bench/niidbench/internal/nn"
	"github.com/niid-bench/niidbench/internal/partition"
	"github.com/niid-bench/niidbench/internal/rng"
)

func adultSpec() nn.ModelSpec {
	spec, err := data.Model("adult")
	if err != nil {
		panic(err)
	}
	return spec
}

func asyncFixture(t *testing.T) ([]*data.Dataset, *data.Dataset) {
	t.Helper()
	train, test, err := data.Load("adult", data.Config{TrainN: 300, TestN: 120, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	_, locals, err := partition.Strategy{Kind: partition.Homogeneous}.Split(train, 3, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	return locals, test
}

// lockstepAsync drives the coordinator like a synchronous federation:
// every generation, every client trains against the current global and
// folds immediately, in party order. With AsyncBuffer equal to the party
// count every fold lands with zero staleness and the flush closes exactly
// when the last client folds; with a smaller buffer the later clients of
// an outer pass fold against an already-advanced generation, exercising
// the staleness discount deterministically.
type lockstepAsync struct {
	sim *Simulation
}

func (l *lockstepAsync) PartyMeta(id int) UpdateMeta {
	n := l.sim.Clients[id].Data.Len()
	return UpdateMeta{N: n, Tau: PredictTau(l.sim.Cfg, n)}
}

func (l *lockstepAsync) RunAsync(c *AsyncCoordinator) error {
	for !c.Done() {
		gen, state, control := c.GlobalSnapshot()
		for id, cl := range l.sim.Clients {
			p := cl.TrainStream(state, control, l.sim.Cfg)
			_, done, err := c.Fold(id, p.Update(), gen)
			p.Release()
			if err != nil {
				return err
			}
			if done {
				break
			}
		}
	}
	return nil
}

// TestAsyncLockstepMatchesSyncAllAlgorithms pins the buffered-async
// aggregation semantics against the synchronous reference: when the async
// schedule degenerates to lockstep — buffer equal to the party count, so
// every generation folds exactly one zero-staleness update per party in
// party order — the math is the synchronous round's for all six
// algorithms (the discount is identically 1, and the flush normalizer
// equals the round's weight sum). The floating-point grouping differs
// (the sync fold pre-normalizes each weight, the async flush divides
// once), so the comparison is near-equality, not bitwise.
func TestAsyncLockstepMatchesSyncAllAlgorithms(t *testing.T) {
	locals, test := asyncFixture(t)
	for _, alg := range ExtendedAlgorithms() {
		t.Run(string(alg), func(t *testing.T) {
			cfg := Config{Algorithm: alg, Rounds: 2, LocalEpochs: 1, BatchSize: 32,
				LR: 0.05, Mu: 0.01, Seed: 5}
			sync, err := NewSimulation(cfg, adultSpec(), locals, test)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sync.Run()
			if err != nil {
				t.Fatal(err)
			}

			acfg := cfg
			acfg.AsyncBuffer = len(locals)
			asim, err := NewSimulation(acfg, adultSpec(), locals, test)
			if err != nil {
				t.Fatal(err)
			}
			got, err := asim.engine.RunAsync(&lockstepAsync{sim: asim})
			if err != nil {
				t.Fatal(err)
			}
			if got.Async == nil {
				t.Fatal("async run reported no AsyncStats")
			}
			if wantFolds := cfg.Rounds * len(locals); got.Async.Folds != wantFolds {
				t.Fatalf("folds %d, want %d", got.Async.Folds, wantFolds)
			}
			if got.Async.MaxStaleness != 0 || got.Async.MeanStaleness != 0 {
				t.Fatalf("lockstep schedule reported staleness (mean %v, max %d)",
					got.Async.MeanStaleness, got.Async.MaxStaleness)
			}
			if len(got.FinalState) != len(want.FinalState) {
				t.Fatalf("state length %d, want %d", len(got.FinalState), len(want.FinalState))
			}
			for i := range want.FinalState {
				a, b := got.FinalState[i], want.FinalState[i]
				scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
				if math.Abs(a-b) > 1e-6*scale {
					t.Fatalf("state[%d]: async %v vs sync %v", i, a, b)
				}
			}
		})
	}
}

// TestAsyncBufferClampsToParties pins the flush threshold clamp: each
// party contributes at most one update per generation it receives, so a
// buffer above the population could never fill and the run would stall.
// The effective buffer must be the party count.
func TestAsyncBufferClampsToParties(t *testing.T) {
	locals, test := asyncFixture(t)
	cfg := Config{Algorithm: FedAvg, Rounds: 2, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, AsyncBuffer: 64}
	sim, err := NewSimulation(cfg, adultSpec(), locals, test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.engine.RunAsync(&lockstepAsync{sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	if wantFolds := cfg.Rounds * len(locals); res.Async.Folds != wantFolds {
		t.Fatalf("folds %d, want %d (buffer not clamped to %d parties)",
			res.Async.Folds, wantFolds, len(locals))
	}
}

// TestAsyncStalenessAccounting runs the deterministic stale schedule:
// buffer 1 with 3 lockstep clients flushes after every fold, so each
// outer pass folds at staleness 0, 1, 2 — mean exactly 1, max exactly 2 —
// and the run completes in one pass per three generations.
func TestAsyncStalenessAccounting(t *testing.T) {
	locals, test := asyncFixture(t)
	cfg := Config{Algorithm: FedAvg, Rounds: 3, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, AsyncBuffer: 1}
	sim, err := NewSimulation(cfg, adultSpec(), locals, test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.engine.RunAsync(&lockstepAsync{sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	if res.Async.Folds != 3 {
		t.Fatalf("folds %d, want 3", res.Async.Folds)
	}
	if res.Async.MeanStaleness != 1 || res.Async.MaxStaleness != 2 {
		t.Fatalf("staleness mean %v max %d, want mean 1 max 2",
			res.Async.MeanStaleness, res.Async.MaxStaleness)
	}
	for i, v := range res.FinalState {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("state[%d] = %v", i, v)
		}
	}
}

// TestAsyncFoldRejections pins the coordinator's validation contract: a
// malformed update (wrong length, future generation) is rejected with an
// error but does not poison the run, and folds after completion are
// ignored with done=true.
func TestAsyncFoldRejections(t *testing.T) {
	locals, test := asyncFixture(t)
	cfg := Config{Algorithm: FedAvg, Rounds: 1, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, AsyncBuffer: 3}
	sim, err := NewSimulation(cfg, adultSpec(), locals, test)
	if err != nil {
		t.Fatal(err)
	}
	c := newAsyncCoordinator(sim.engine, nil)

	if d := c.staleness(0); d != 1 {
		t.Fatalf("staleness discount at tau 0: %v", d)
	}
	if d, want := c.staleness(1), 1/math.Sqrt(2); math.Abs(d-want) > 1e-15 {
		t.Fatalf("staleness discount at tau 1: %v, want %v (default exponent 0.5)", d, want)
	}

	stateLen := len(sim.server.State())
	good := func() Update {
		n := locals[0].Len()
		return Update{Delta: make([]float64, stateLen), N: n, Tau: PredictTau(sim.Cfg, n)}
	}

	if _, _, err := c.Fold(0, Update{Delta: make([]float64, 3), N: 10, Tau: 1}, 0); err == nil {
		t.Fatal("short delta accepted")
	}
	if _, _, err := c.Fold(0, good(), 5); err == nil {
		t.Fatal("future-generation update accepted")
	}
	u := good()
	u.Tau = 0
	if _, _, err := c.Fold(0, u, 0); err == nil {
		t.Fatal("non-positive tau accepted")
	}

	// Fill the only generation; the run completes on the third fold.
	for i := 0; i < 3; i++ {
		flushed, done, err := c.Fold(i, good(), 0)
		if err != nil {
			t.Fatalf("fold %d: %v", i, err)
		}
		if (i == 2) != flushed || (i == 2) != done {
			t.Fatalf("fold %d: flushed=%v done=%v", i, flushed, done)
		}
	}
	if flushed, done, err := c.Fold(0, good(), 0); flushed || !done || err != nil {
		t.Fatalf("post-completion fold: flushed=%v done=%v err=%v", flushed, done, err)
	}
}

// TestAsyncFairnessCapDropsFastParty is the regression test for the
// fast-party buffer monopoly: with the default fair share of 1, a second
// update from the same party inside one buffer window is dropped silently
// (no error, no fold) and counted in FairnessDropped, so a 10x-faster
// party cannot turn a "buffer of M" into "M copies of itself". The quota
// resets at every flush.
func TestAsyncFairnessCapDropsFastParty(t *testing.T) {
	locals, test := asyncFixture(t)
	cfg := Config{Algorithm: FedAvg, Rounds: 2, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, AsyncBuffer: 3}
	sim, err := NewSimulation(cfg, adultSpec(), locals, test)
	if err != nil {
		t.Fatal(err)
	}
	c := newAsyncCoordinator(sim.engine, nil)
	stateLen := len(sim.server.State())
	good := func(i int) Update {
		n := locals[i].Len()
		return Update{Delta: make([]float64, stateLen), N: n, Tau: PredictTau(sim.Cfg, n)}
	}

	if flushed, done, err := c.Fold(0, good(0), 0); flushed || done || err != nil {
		t.Fatalf("first fold: flushed=%v done=%v err=%v", flushed, done, err)
	}
	// The fast party again, same window: dropped, not folded, not an error.
	if flushed, done, err := c.Fold(0, good(0), 0); flushed || done || err != nil {
		t.Fatalf("over-quota fold: flushed=%v done=%v err=%v", flushed, done, err)
	}
	if c.stats.FairnessDropped != 1 {
		t.Fatalf("FairnessDropped %d, want 1", c.stats.FairnessDropped)
	}
	if c.stats.Folds != 1 {
		t.Fatalf("folds %d after the drop, want 1", c.stats.Folds)
	}
	// The other parties fill the window; the third accepted fold flushes.
	if flushed, _, err := c.Fold(1, good(1), 0); flushed || err != nil {
		t.Fatalf("second party fold: flushed=%v err=%v", flushed, err)
	}
	flushed, done, err := c.Fold(2, good(2), 0)
	if err != nil || !flushed || done {
		t.Fatalf("window-filling fold: flushed=%v done=%v err=%v", flushed, done, err)
	}
	// New window, new quota: the fast party folds again.
	if flushed, done, err := c.Fold(0, good(0), 1); flushed || done || err != nil {
		t.Fatalf("post-flush fold: flushed=%v done=%v err=%v", flushed, done, err)
	}
	if c.stats.FairnessDropped != 1 {
		t.Fatalf("FairnessDropped %d after flush, want still 1", c.stats.FairnessDropped)
	}
}

// TestAsyncFairnessFloorDepletedFederation pins the liveness escape
// hatch: when deaths shrink the federation below buffer/fair-share
// feasibility, the effective cap rises to ceil(buffer/live) so the
// survivors can still flush a window — a sole survivor may legally
// contribute every fold of a 3-deep buffer.
func TestAsyncFairnessFloorDepletedFederation(t *testing.T) {
	locals, test := asyncFixture(t)
	cfg := Config{Algorithm: FedAvg, Rounds: 1, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, AsyncBuffer: 3}
	sim, err := NewSimulation(cfg, adultSpec(), locals, test)
	if err != nil {
		t.Fatal(err)
	}
	c := newAsyncCoordinator(sim.engine, nil)
	c.SetLive(1)
	stateLen := len(sim.server.State())
	n := locals[0].Len()
	good := Update{Delta: make([]float64, stateLen), N: n, Tau: PredictTau(sim.Cfg, n)}
	for i := 0; i < 3; i++ {
		flushed, done, err := c.Fold(0, good, 0)
		if err != nil {
			t.Fatalf("fold %d: %v", i, err)
		}
		if (i == 2) != flushed || (i == 2) != done {
			t.Fatalf("fold %d: flushed=%v done=%v", i, flushed, done)
		}
	}
	if c.stats.FairnessDropped != 0 {
		t.Fatalf("FairnessDropped %d, want 0: the floor must admit a sole survivor", c.stats.FairnessDropped)
	}
	// SetLive ignores non-positive party counts rather than poisoning the
	// floor computation.
	c.SetLive(0)
	if c.live != 1 {
		t.Fatalf("SetLive(0) changed live to %d", c.live)
	}
}

package fl

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/niid-bench/niidbench/internal/partition"
	"github.com/niid-bench/niidbench/internal/rng"
)

// fullSnapshot builds a snapshot with every field populated (including the
// optional ones), so codec tests exercise every branch of the encoder.
func fullSnapshot() *FederationSnapshot {
	return &FederationSnapshot{
		ConfigFingerprint: 0xDEADBEEFCAFEF00D,
		Round:             3,
		NumParties:        4,
		ParamLen:          5,
		State:             []float64{1.5, -2.25, 0, math.Pi, math.Inf(1), -0.0},
		Control:           []float64{0.5, -0.5, 0.25, 0, 1},
		DynH:              []float64{},
		Velocity:          []float64{9, 8, 7, 6, 5, 4},
		AdamM:             []float64{1, 2, 3, 4, 5, 6},
		AdamV:             []float64{6, 5, 4, 3, 2, 1},
		AdamT:             17,
		Sampler:           rng.State{S: [4]uint64{1, 2, 3, ^uint64(0)}, HasSpare: true, Spare: -1.25},
		Curve: []RoundMetrics{
			{Round: 0, TestAccuracy: 0.5, TrainLoss: 1.25, CommBytes: 4096,
				Duration: 3 * time.Millisecond, Sampled: []int{0, 2}},
			{Round: 1, TestAccuracy: -1, TrainLoss: 1.1, CommBytes: 2048,
				Duration: time.Millisecond, Sampled: []int{1, 3}, Dropped: []int{3},
				Quorum: &QuorumError{Round: 1, Live: 2, Min: 2, Attempts: 5}},
			{Round: 2, TestAccuracy: 0.6, TrainLoss: 0.9, CommBytes: 4096,
				Duration: 2 * time.Millisecond, Sampled: []int{0, 1, 2, 3}},
		},
		BestAccuracy:   0.6,
		TotalCommBytes: 10240,
		ComputeTime:    6 * time.Millisecond,
		PartyControl:   [][]float64{{1, 2, 3, 4, 5}, nil, {}, {5, 4, 3, 2, 1}},
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	in := fullSnapshot()
	b := EncodeSnapshot(in)
	out, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}

	// A minimal snapshot (only nil-able fields absent) round-trips too, and
	// nil-ness is preserved — nil Control must not come back as empty.
	min := &FederationSnapshot{State: []float64{1}, NumParties: 1, ParamLen: 1}
	out, err = DecodeSnapshot(EncodeSnapshot(min))
	if err != nil {
		t.Fatal(err)
	}
	if out.Control != nil || out.DynH != nil || out.Velocity != nil ||
		out.AdamM != nil || out.AdamV != nil || out.PartyControl != nil {
		t.Fatalf("nil fields resurrected: %+v", out)
	}
}

// TestSnapshotCodecAllAlgorithms round-trips an engine-captured snapshot
// for each of the six algorithms, so algorithm-specific server state
// (SCAFFOLD c, FedDyn h) survives the codec.
func TestSnapshotCodecAllAlgorithms(t *testing.T) {
	for _, alg := range ExtendedAlgorithms() {
		cfg := quickCfg(alg)
		cfg.Rounds = 2
		sim, _ := testFederation(t, partition.Strategy{Kind: partition.Homogeneous}, 3, cfg)
		if _, err := sim.Run(); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		snap := sim.engine.Snapshot(cfg.Rounds, nil, 0.5, 1024, time.Millisecond)
		out, err := DecodeSnapshot(EncodeSnapshot(snap))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !reflect.DeepEqual(snap, out) {
			t.Fatalf("%s: engine snapshot did not survive the codec", alg)
		}
		if alg == Scaffold && out.Control == nil {
			t.Fatalf("scaffold snapshot lost the server control variate")
		}
		if alg == FedDyn && out.DynH == nil {
			t.Fatalf("feddyn snapshot lost the server h state")
		}
	}
}

// TestSnapshotRejectsCorruption sweeps every truncation point and every
// single-byte flip of a valid snapshot: all of them must be rejected with
// a typed *CorruptSnapshotError — never decoded, never a panic.
func TestSnapshotRejectsCorruption(t *testing.T) {
	b := EncodeSnapshot(fullSnapshot())
	for cut := 0; cut < len(b); cut++ {
		_, err := DecodeSnapshot(b[:cut])
		var ce *CorruptSnapshotError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d/%d: %v", cut, len(b), err)
		}
	}
	for i := 0; i < len(b); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), b...)
			mut[i] ^= bit
			_, err := DecodeSnapshot(mut)
			var ce *CorruptSnapshotError
			if !errors.As(err, &ce) {
				t.Fatalf("bit flip at byte %d (mask %02x) decoded: %v", i, bit, err)
			}
		}
	}
	// Over-length vector declarations are caught before allocation even
	// when the CRC is recomputed to match.
	if _, err := DecodeSnapshot([]byte("definitely not a snapshot")); err == nil {
		t.Fatal("garbage decoded")
	}
}

// TestConfigFingerprint pins what the fingerprint covers: math-relevant
// fields change it, transport-only knobs do not.
func TestConfigFingerprint(t *testing.T) {
	base := quickCfg(FedAvg)
	fp := ConfigFingerprint(base)
	for name, mutate := range map[string]func(*Config){
		"algorithm": func(c *Config) { c.Algorithm = Scaffold },
		"lr":        func(c *Config) { c.LR = 0.1 },
		"seed":      func(c *Config) { c.Seed++ },
		"rounds":    func(c *Config) { c.Rounds++ },
		"epochs":    func(c *Config) { c.LocalEpochs++ },
	} {
		c := base
		mutate(&c)
		if ConfigFingerprint(c) == fp {
			t.Fatalf("%s change did not change the fingerprint", name)
		}
	}
	for name, mutate := range map[string]func(*Config){
		"chunk size":   func(c *Config) { c.ChunkSize = 4096 },
		"chunk window": func(c *Config) { c.ChunkWindow = 8 },
		"parallelism":  func(c *Config) { c.Parallelism = 4 },
		"quorum":       func(c *Config) { c.MinParties = 2; c.QuorumRetries = 7; c.QuorumRetryWait = time.Millisecond },
	} {
		c := base
		mutate(&c)
		if ConfigFingerprint(c) != fp {
			t.Fatalf("transport knob %q changed the fingerprint", name)
		}
	}
}

// TestRestoreRefusesMismatch covers the refusal paths: wrong fingerprint
// (typed *SnapshotMismatchError), out-of-range round, wrong shapes.
func TestRestoreRefusesMismatch(t *testing.T) {
	cfg := quickCfg(FedAvg)
	sim, _ := testFederation(t, partition.Strategy{Kind: partition.Homogeneous}, 3, cfg)
	snap := sim.engine.Snapshot(1, nil, 0, 0, 0)

	other := snap
	wrong := *other
	wrong.ConfigFingerprint++
	var me *SnapshotMismatchError
	if err := sim.engine.Restore(&wrong); !errors.As(err, &me) {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
	if !strings.Contains(me.Error(), "refusing to resume") {
		t.Fatalf("mismatch error not descriptive: %v", me)
	}

	late := *snap
	late.Round = cfg.Rounds + 1
	if err := sim.engine.Restore(&late); err == nil {
		t.Fatal("out-of-range round accepted")
	}

	short := *snap
	short.State = []float64{1, 2}
	if err := sim.engine.Restore(&short); err == nil {
		t.Fatal("wrong state shape accepted")
	}

	parties := *snap
	parties.NumParties = 99
	if err := sim.engine.Restore(&parties); err == nil {
		t.Fatal("wrong party count accepted")
	}

	// SCAFFOLD snapshot into a FedAvg engine: same model, different
	// algorithm state — the fingerprint already differs, but even a forged
	// fingerprint is caught by the shape check.
	forged := *snap
	forged.Control = make([]float64, len(snap.State))
	if err := sim.engine.Restore(&forged); err == nil {
		t.Fatal("foreign control state accepted")
	}

	if err := sim.engine.Restore(snap); err != nil {
		t.Fatalf("valid snapshot refused: %v", err)
	}
}

// TestResumeBitwiseAllAlgorithms is the engine-level crash-restart
// equivalence proof: run a reference federation to completion; run an
// identical one that "crashes" right after checkpointing round k (the
// checkpoint hook aborts the run); then rebuild the server from scratch —
// fresh Simulation — keep the surviving clients (exactly what a real
// restart looks like: the server process died, the party processes kept
// their local state), Restore the snapshot and finish. Every algorithm's
// final state must be bitwise identical to the uninterrupted run.
func TestResumeBitwiseAllAlgorithms(t *testing.T) {
	const crashAfter = 2
	crashErr := errors.New("simulated crash after durable checkpoint")
	for _, alg := range ExtendedAlgorithms() {
		cfg := quickCfg(alg)
		ref, _ := testFederation(t, partition.Strategy{Kind: partition.Homogeneous}, 3, cfg)
		want, err := ref.Run()
		if err != nil {
			t.Fatalf("%s reference: %v", alg, err)
		}

		crash, _ := testFederation(t, partition.Strategy{Kind: partition.Homogeneous}, 3, cfg)
		var snap *FederationSnapshot
		crash.engine.Checkpoint = func(s *FederationSnapshot) error {
			if s.Round == crashAfter {
				snap = s
				return crashErr
			}
			return nil
		}
		if _, err := crash.Run(); !errors.Is(err, crashErr) {
			t.Fatalf("%s crash run: %v", alg, err)
		}
		if snap == nil {
			t.Fatalf("%s: checkpoint hook never fired at round %d", alg, crashAfter)
		}

		// The snapshot survives the wire format too: resume from the
		// decoded bytes, not the in-memory object.
		snap, err = DecodeSnapshot(EncodeSnapshot(snap))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}

		resumed, _ := testFederation(t, partition.Strategy{Kind: partition.Homogeneous}, 3, cfg)
		resumed.Clients = crash.Clients // party processes survived the server crash
		if err := resumed.engine.Restore(snap); err != nil {
			t.Fatalf("%s restore: %v", alg, err)
		}
		got, err := resumed.Run()
		if err != nil {
			t.Fatalf("%s resumed: %v", alg, err)
		}
		if len(got.FinalState) != len(want.FinalState) {
			t.Fatalf("%s: state length %d vs %d", alg, len(got.FinalState), len(want.FinalState))
		}
		for i := range want.FinalState {
			if got.FinalState[i] != want.FinalState[i] {
				t.Fatalf("%s: resumed state diverges at %d: %v != %v",
					alg, i, got.FinalState[i], want.FinalState[i])
			}
		}
		if got.FinalAccuracy != want.FinalAccuracy || got.BestAccuracy != want.BestAccuracy {
			t.Fatalf("%s: accuracy %v/%v, want %v/%v",
				alg, got.FinalAccuracy, got.BestAccuracy, want.FinalAccuracy, want.BestAccuracy)
		}
		if got.TotalCommBytes != want.TotalCommBytes || len(got.Curve) != len(want.Curve) {
			t.Fatalf("%s: accounting diverged (%d bytes/%d rounds, want %d/%d)",
				alg, got.TotalCommBytes, len(got.Curve), want.TotalCommBytes, len(want.Curve))
		}
	}
}

// TestCheckpointCadence pins which rounds fire the hook: every round at
// cadence 1 (and <= 0), the cadence multiples plus the final round
// otherwise.
func TestCheckpointCadence(t *testing.T) {
	for _, tc := range []struct {
		every int
		want  []int
	}{
		{0, []int{1, 2, 3, 4}},
		{1, []int{1, 2, 3, 4}},
		{2, []int{2, 4}},
		{3, []int{3, 4}}, // cadence round plus the mandatory final round
		{9, []int{4}},
	} {
		cfg := quickCfg(FedAvg)
		sim, _ := testFederation(t, partition.Strategy{Kind: partition.Homogeneous}, 3, cfg)
		var fired []int
		sim.engine.Checkpoint = func(s *FederationSnapshot) error {
			fired = append(fired, s.Round)
			return nil
		}
		sim.engine.CheckpointEvery = tc.every
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fired, tc.want) {
			t.Fatalf("cadence %d fired at %v, want %v", tc.every, fired, tc.want)
		}
	}
}

// TestSnapshotFileAtomicity checks the crash-safe write path: the snapshot
// file is replaced atomically (no temp litter), a bit-flipped file on disk
// is refused on load, and the legacy state checkpoint enjoys the same CRC
// protection.
func TestSnapshotFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotFileName)
	snap := fullSnapshot()
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second snapshot: the write goes through a temp file
	// and rename, leaving exactly one file behind.
	snap.Round = 7
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != SnapshotFileName {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("checkpoint dir litter: %v", names)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 7 {
		t.Fatalf("loaded round %d, want 7", got.Round)
	}

	// Flip one payload byte on disk: load must refuse with the typed error.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadSnapshotFile(path)
	var ce *CorruptSnapshotError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupted snapshot loaded: %v", err)
	}

	// Same discipline for the bare state checkpoint.
	statePath := filepath.Join(dir, "model.niidb")
	if err := SaveStateFile(statePath, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	sb, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	sb[len(sb)-6] ^= 0x01 // inside the payload, before the CRC trailer
	if err := os.WriteFile(statePath, sb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStateFile(statePath); !errors.As(err, &ce) {
		t.Fatalf("bit-flipped state checkpoint loaded: %v", err)
	}
}

// Package partition implements NIID-Bench's six non-IID data partitioning
// strategies — the paper's primary contribution — plus the homogeneous
// (IID) baseline and the mixed-skew compositions of Section V-G:
//
//   - Label distribution skew, quantity-based (#C = k): each party holds
//     samples of exactly k classes.
//   - Label distribution skew, distribution-based (p_k ~ Dir(beta)): each
//     class's samples are split by a Dirichlet draw.
//   - Feature distribution skew, noise-based (x^ ~ Gau(sigma)): IID split,
//     then party i's features receive Gaussian noise of level sigma*i/N.
//   - Feature distribution skew, synthetic: FCUBE's symmetric-octant
//     allocation.
//   - Feature distribution skew, real-world: split by writer (FEMNIST).
//   - Quantity skew (q ~ Dir(beta)): party sizes follow a Dirichlet draw
//     over an otherwise IID split.
//
// A Partition assigns every training-sample index to exactly one party.
// Strategies that transform features (noise-based skew) are applied when
// materializing party datasets, not here, so a Partition alone is always a
// pure index assignment that can be audited and reported.
package partition

import (
	"fmt"

	"github.com/niid-bench/niidbench/internal/data"
	"github.com/niid-bench/niidbench/internal/rng"
)

// Partition maps each party to the indices of its local samples.
type Partition [][]int

// NumParties returns the number of parties.
func (p Partition) NumParties() int { return len(p) }

// TotalSamples returns the number of assigned samples.
func (p Partition) TotalSamples() int {
	n := 0
	for _, idx := range p {
		n += len(idx)
	}
	return n
}

// Validate checks that the partition covers indices in [0, n) at most once
// and that every party is non-empty if requireNonEmpty is set.
func (p Partition) Validate(n int, requireNonEmpty bool) error {
	seen := make([]bool, n)
	for pi, idx := range p {
		if requireNonEmpty && len(idx) == 0 {
			return fmt.Errorf("partition: party %d is empty", pi)
		}
		for _, i := range idx {
			if i < 0 || i >= n {
				return fmt.Errorf("partition: party %d has out-of-range index %d", pi, i)
			}
			if seen[i] {
				return fmt.Errorf("partition: index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	return nil
}

// IID splits n samples uniformly at random into parties of (nearly) equal
// size — the paper's homogeneous baseline.
func IID(n, parties int, r *rng.RNG) Partition {
	if parties <= 0 || n < parties {
		panic(fmt.Sprintf("partition: cannot split %d samples into %d parties", n, parties))
	}
	perm := r.Perm(n)
	out := make(Partition, parties)
	for i, idx := range perm {
		p := i % parties
		out[p] = append(out[p], idx)
	}
	return out
}

// QuantityLabel implements quantity-based label imbalance (#C = k): each
// party is assigned k distinct class IDs, then each class's samples are
// divided randomly and equally among the parties owning that class.
// Assignment retries until every class is owned by at least one party so
// no samples are dropped; k must be in [1, classes].
func QuantityLabel(labels []int, classes, parties, k int, r *rng.RNG) Partition {
	if k < 1 || k > classes {
		panic(fmt.Sprintf("partition: #C=%d outside [1,%d]", k, classes))
	}
	// Assign k classes to each party. To guarantee coverage (the paper's
	// division of "samples of each label into the parties which own the
	// label" requires every label to be owned), deal classes round-robin
	// from a shuffled deck first, then top up randomly.
	owners := make([][]int, classes) // class -> owning parties
	for attempt := 0; ; attempt++ {
		for c := range owners {
			owners[c] = owners[c][:0]
		}
		if parties*k >= classes {
			deck := r.Perm(classes)
			pos := 0
			partyClasses := make([][]int, parties)
			for p := 0; p < parties; p++ {
				chosen := map[int]bool{}
				for len(partyClasses[p]) < k {
					var c int
					if pos < len(deck) {
						c = deck[pos]
						pos++
					} else {
						c = r.Intn(classes)
					}
					if chosen[c] {
						continue
					}
					chosen[c] = true
					partyClasses[p] = append(partyClasses[p], c)
				}
			}
			for p, cs := range partyClasses {
				for _, c := range cs {
					owners[c] = append(owners[c], p)
				}
			}
		} else {
			// Fewer total slots than classes: not all classes can be owned;
			// assign randomly (some samples are unavoidably dropped).
			for p := 0; p < parties; p++ {
				for _, c := range r.SampleWithoutReplacement(classes, k) {
					owners[c] = append(owners[c], p)
				}
			}
		}
		covered := parties*k < classes // in the degenerate case accept as-is
		if !covered {
			covered = true
			for _, os := range owners {
				if len(os) == 0 {
					covered = false
					break
				}
			}
		}
		if covered || attempt > 100 {
			break
		}
	}

	// Split each class's samples equally among its owners.
	byClass := make([][]int, classes)
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}
	out := make(Partition, parties)
	for c, idx := range byClass {
		os := owners[c]
		if len(os) == 0 {
			continue // degenerate case: class unowned, samples dropped
		}
		shuffled := append([]int{}, idx...)
		r.Shuffle(shuffled)
		for j, i := range shuffled {
			out[os[j%len(os)]] = append(out[os[j%len(os)]], i)
		}
	}
	return out
}

// DirichletLabel implements distribution-based label imbalance
// (p_k ~ Dir(beta)): for each class k a Dirichlet draw p_k decides what
// proportion of that class's samples each party receives. Smaller beta is
// more skewed. Following the reference implementation, the draw is
// rejected until every party has at least minSize samples so training
// never sees an empty party.
func DirichletLabel(labels []int, classes, parties int, beta float64, r *rng.RNG) Partition {
	const minSize = 2
	byClass := make([][]int, classes)
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}
	for attempt := 0; ; attempt++ {
		out := make(Partition, parties)
		for _, idx := range byClass {
			p := r.Dirichlet(parties, beta)
			shuffled := append([]int{}, idx...)
			r.Shuffle(shuffled)
			// Convert proportions to contiguous slice boundaries.
			start := 0
			for pi := 0; pi < parties; pi++ {
				count := int(p[pi]*float64(len(shuffled)) + 0.5)
				if pi == parties-1 {
					count = len(shuffled) - start
				}
				if start+count > len(shuffled) {
					count = len(shuffled) - start
				}
				out[pi] = append(out[pi], shuffled[start:start+count]...)
				start += count
			}
		}
		ok := true
		for _, idx := range out {
			if len(idx) < minSize {
				ok = false
				break
			}
		}
		if ok || attempt > 200 {
			return out
		}
	}
}

// QuantitySkew implements q ~ Dir(beta): the data distribution stays IID
// but party sizes follow a Dirichlet draw. The draw is rejected until
// every party has at least minSize samples.
func QuantitySkew(n, parties int, beta float64, r *rng.RNG) Partition {
	const minSize = 2
	for attempt := 0; ; attempt++ {
		q := r.Dirichlet(parties, beta)
		perm := r.Perm(n)
		out := make(Partition, parties)
		start := 0
		for pi := 0; pi < parties; pi++ {
			count := int(q[pi]*float64(n) + 0.5)
			if pi == parties-1 {
				count = n - start
			}
			if start+count > n {
				count = n - start
			}
			out[pi] = append(out[pi], perm[start:start+count]...)
			start += count
		}
		ok := true
		for _, idx := range out {
			if len(idx) < minSize {
				ok = false
				break
			}
		}
		if ok || attempt > 200 {
			return out
		}
	}
}

// ByWriter implements real-world feature skew: writers (and all their
// samples) are divided randomly and equally among the parties, as the
// paper does for FEMNIST.
func ByWriter(writers []int, parties int, r *rng.RNG) Partition {
	maxW := -1
	for _, w := range writers {
		if w > maxW {
			maxW = w
		}
	}
	if maxW < 0 {
		panic("partition: ByWriter requires writer annotations")
	}
	numWriters := maxW + 1
	if numWriters < parties {
		panic(fmt.Sprintf("partition: %d writers for %d parties", numWriters, parties))
	}
	writerParty := make([]int, numWriters)
	perm := r.Perm(numWriters)
	for i, w := range perm {
		writerParty[w] = i % parties
	}
	out := make(Partition, parties)
	for i, w := range writers {
		p := writerParty[w]
		out[p] = append(out[p], i)
	}
	return out
}

// FCube implements the synthetic feature-skew partition: the 8 octants of
// the cube are paired symmetrically about the origin and each of the 4
// parties receives one pair. Requires exactly 4 parties.
func FCube(ds *data.Dataset, parties int) Partition {
	if parties != 4 {
		panic(fmt.Sprintf("partition: FCUBE is defined for 4 parties, got %d", parties))
	}
	// Octants o and 7-o (bitwise complement) are symmetric about the
	// origin. Pair them deterministically: party p gets octants p and 7-p.
	out := make(Partition, 4)
	for i := 0; i < ds.Len(); i++ {
		o := data.FCubeOctant(ds.Sample(i))
		p := o
		if p > 3 {
			p = 7 - p
		}
		out[p] = append(out[p], i)
	}
	return out
}

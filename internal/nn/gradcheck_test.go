package nn

import (
	"math"
	"testing"

	"github.com/niid-bench/niidbench/internal/rng"
	"github.com/niid-bench/niidbench/internal/tensor"
)

// lossOf runs a forward pass and returns the scalar loss for the current
// parameter values. Used to compute numerical gradients.
func lossOf(m *Sequential, x *tensor.Tensor, labels []int) float64 {
	logits := m.Forward(x, true)
	loss, _ := SoftmaxCrossEntropy{}.Loss(logits, labels)
	return loss
}

// checkGradients compares analytic parameter gradients against central
// finite differences. BatchNorm's running-statistics update makes the
// forward pass non-idempotent in train mode, so callers with BN layers
// freeze momentum first.
func checkGradients(t *testing.T, m *Sequential, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	m.ZeroGrads()
	logits := m.Forward(x, true)
	_, g := SoftmaxCrossEntropy{}.Loss(logits, labels)
	m.Backward(g)

	const eps = 1e-5
	for pi, p := range m.Params() {
		data, grad := p.Data.Data(), p.Grad.Data()
		// Check a spread of coordinates, not all, to keep tests fast.
		stride := len(data)/7 + 1
		for i := 0; i < len(data); i += stride {
			orig := data[i]
			data[i] = orig + eps
			lp := lossOf(m, x, labels)
			data[i] = orig - eps
			lm := lossOf(m, x, labels)
			data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d (%s) coord %d: analytic %v numeric %v", pi, p.Name, i, grad[i], num)
			}
		}
	}
}

func freezeBN(m *Sequential) {
	for _, l := range m.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			bn.Momentum = 0
		}
	}
}

func randInput(r *rng.RNG, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	d := x.Data()
	for i := range d {
		d[i] = r.Normal()
	}
	return x
}

func TestGradCheckDense(t *testing.T) {
	r := rng.New(1)
	m := NewSequential(NewDense(6, 5, r), NewReLU(), NewDense(5, 3, r))
	x := randInput(r, 4, 6)
	checkGradients(t, m, x, []int{0, 1, 2, 1}, 1e-4)
}

func TestGradCheckConv(t *testing.T) {
	r := rng.New(2)
	m := NewSequential(
		NewConv2D(2, 3, 3, 3, 1, 1, r),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense(3*3*3, 4, r),
	)
	x := randInput(r, 2, 2, 6, 6)
	checkGradients(t, m, x, []int{1, 3}, 1e-4)
}

func TestGradCheckConvStride(t *testing.T) {
	r := rng.New(3)
	m := NewSequential(
		NewConv2D(1, 2, 3, 3, 2, 0, r),
		NewFlatten(),
		NewDense(2*3*3, 3, r),
	)
	x := randInput(r, 2, 1, 7, 7)
	checkGradients(t, m, x, []int{0, 2}, 1e-4)
}

func TestGradCheckBatchNorm2D(t *testing.T) {
	r := rng.New(4)
	m := NewSequential(NewDense(5, 6, r), NewBatchNorm(6), NewReLU(), NewDense(6, 3, r))
	freezeBN(m)
	x := randInput(r, 8, 5)
	checkGradients(t, m, x, []int{0, 1, 2, 0, 1, 2, 0, 1}, 1e-3)
}

func TestGradCheckBatchNorm4D(t *testing.T) {
	r := rng.New(5)
	m := NewSequential(
		NewConv2D(1, 3, 3, 3, 1, 1, r),
		NewBatchNorm(3),
		NewReLU(),
		NewFlatten(),
		NewDense(3*5*5, 2, r),
	)
	freezeBN(m)
	x := randInput(r, 4, 1, 5, 5)
	checkGradients(t, m, x, []int{0, 1, 1, 0}, 1e-3)
}

func TestGradCheckResidual(t *testing.T) {
	r := rng.New(6)
	m := NewSequential(
		NewResidual(2, 4, r),
		NewFlatten(),
		NewDense(4*4*4, 3, r),
	)
	// Freeze BN momentum inside the residual block.
	for _, l := range m.Layers {
		if blk, ok := l.(*Residual); ok {
			blk.bn1.Momentum = 0
			blk.bn2.Momentum = 0
			if blk.projBN != nil {
				blk.projBN.Momentum = 0
			}
		}
	}
	x := randInput(r, 3, 2, 4, 4)
	checkGradients(t, m, x, []int{0, 1, 2}, 1e-3)
}

func TestGradCheckPaperCNN(t *testing.T) {
	r := rng.New(7)
	m := Build(ModelSpec{Kind: KindCNN, Channels: 1, Height: 16, Width: 16, Classes: 4}, r)
	x := randInput(r, 2, 1, 16, 16)
	checkGradients(t, m, x, []int{0, 3}, 1e-4)
}

func TestGradCheckPaperMLP(t *testing.T) {
	r := rng.New(8)
	m := Build(ModelSpec{Kind: KindMLP, InputDim: 12, Classes: 2}, r)
	x := randInput(r, 6, 12)
	checkGradients(t, m, x, []int{0, 1, 0, 1, 0, 1}, 1e-4)
}

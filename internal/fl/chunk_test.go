package fl

import (
	"math"
	"testing"

	"github.com/niid-bench/niidbench/internal/rng"
)

// TestChunkStateMachine exercises the chunked accumulator's misuse
// errors: wrong update index, out-of-order/overlapping/oversized offsets,
// finishing an incomplete stream, trailer mismatches, and mixing a whole
// AddUpdate into an open chunk stream.
func TestChunkStateMachine(t *testing.T) {
	cfg, _ := Config{}.Normalize()
	s := NewServer(cfg, []float64{0, 0, 0, 0}, 4, 2)
	if err := s.AddUpdateChunk(0, 0, []float64{1}); err == nil {
		t.Fatal("AddUpdateChunk outside a round should fail")
	}
	metas := []UpdateMeta{{N: 10, Tau: 2}, {N: 20, Tau: 2}}
	if err := s.BeginRound(metas); err != nil {
		t.Fatal(err)
	}
	if err := s.AddUpdateChunk(1, 0, []float64{1}); err == nil {
		t.Fatal("chunk for the wrong update index should fail")
	}
	if err := s.AddUpdateChunk(0, 1, []float64{1}); err == nil {
		t.Fatal("chunk with a leading gap should fail")
	}
	if err := s.AddUpdateChunk(0, 0, nil); err == nil {
		t.Fatal("empty chunk should fail")
	}
	if err := s.AddUpdateChunk(0, 0, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("chunk beyond the stream length should fail")
	}
	if err := s.AddUpdateChunk(0, 0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddUpdateChunk(0, 1, []float64{3}); err == nil {
		t.Fatal("overlapping offset should fail")
	}
	if err := s.AddUpdateChunk(0, 3, []float64{4}); err == nil {
		t.Fatal("gapped offset should fail")
	}
	if err := s.FinishUpdate(Update{N: 10, Tau: 2}); err == nil {
		t.Fatal("FinishUpdate with an incomplete stream should fail")
	}
	if err := s.AddUpdate(Update{Delta: []float64{1, 1, 1, 1}, N: 10, Tau: 2}); err == nil {
		t.Fatal("AddUpdate during an open chunk stream should fail")
	}
	if err := s.AddUpdateChunk(0, 2, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishUpdate(Update{N: 10, Tau: 2, Delta: []float64{1}}); err == nil {
		t.Fatal("trailer carrying a delta vector should fail")
	}
	if err := s.FinishUpdate(Update{N: 10, Tau: 3}); err == nil {
		t.Fatal("trailer mismatching the meta should fail")
	}
	if err := s.FinishUpdate(Update{N: 10, Tau: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddUpdate(Update{Delta: []float64{1, 1, 1, 1}, N: 20, Tau: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishRound(); err != nil {
		t.Fatal(err)
	}
}

// TestDropReweightsSurvivors drops one mid-round update (after part of
// its chunk stream was staged) and checks the finished state against a
// fresh batched aggregation over the survivors only, for every algorithm
// and both weighting modes. The drop path renormalizes with one scalar,
// so equality is to rounding (1e-12 relative), not bitwise.
func TestDropReweightsSurvivors(t *testing.T) {
	const paramLen, stateLen, parties = 11, 14, 4
	initial := make([]float64, stateLen)
	ir := rng.New(5)
	for i := range initial {
		initial[i] = 2*ir.Float64() - 1
	}
	for _, alg := range ExtendedAlgorithms() {
		for _, unweighted := range []bool{false, true} {
			cfg, err := Config{Algorithm: alg, Unweighted: unweighted}.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			dropping := NewServer(cfg, initial, paramLen, parties)
			reference := NewServer(cfg, initial, paramLen, parties)
			r := rng.New(23)
			ups := synthUpdates(r, parties, stateLen, paramLen, alg == Scaffold)

			metas := make([]UpdateMeta, len(ups))
			for j, u := range ups {
				metas[j] = UpdateMeta{N: u.N, Tau: u.Tau}
			}
			if err := dropping.BeginRound(metas); err != nil {
				t.Fatal(err)
			}
			const victim = 1
			for j, u := range ups {
				if j == victim {
					// Stage part of the stream, then abandon it — nothing
					// of it may reach the accumulator.
					if err := dropping.AddUpdateChunk(j, 0, u.Delta[:5]); err != nil {
						t.Fatal(err)
					}
					if err := dropping.DropUpdate(); err != nil {
						t.Fatal(err)
					}
					continue
				}
				if err := dropping.AddUpdate(u); err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
			}
			if err := dropping.FinishRound(); err != nil {
				t.Fatalf("%s: %v", alg, err)
			}

			survivors := append(append([]Update{}, ups[:victim]...), ups[victim+1:]...)
			if err := reference.aggregateBatched(survivors); err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			for i := range dropping.State() {
				got, want := dropping.State()[i], reference.State()[i]
				if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
					t.Fatalf("%s unweighted=%v: state[%d] dropped-round %v vs survivors-only %v",
						alg, unweighted, i, got, want)
				}
			}
			if alg == Scaffold {
				// The control fold is weight-independent, so survivors
				// match bitwise.
				for i := range dropping.Control() {
					if dropping.Control()[i] != reference.Control()[i] {
						t.Fatalf("scaffold: control[%d] %v vs %v", i, dropping.Control()[i], reference.Control()[i])
					}
				}
			}
		}
	}
}

// TestAllUpdatesDroppedFailsRound pins the degenerate case: a round where
// every party was dropped cannot finish.
func TestAllUpdatesDroppedFailsRound(t *testing.T) {
	cfg, _ := Config{}.Normalize()
	s := NewServer(cfg, []float64{0, 0}, 2, 2)
	if err := s.BeginRound([]UpdateMeta{{N: 5, Tau: 1}, {N: 5, Tau: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.DropUpdate(); err != nil {
		t.Fatal(err)
	}
	if err := s.DropUpdate(); err != nil {
		t.Fatal(err)
	}
	if err := s.DropUpdate(); err == nil {
		t.Fatal("dropping beyond the sampled parties should fail")
	}
	if err := s.FinishRound(); err == nil {
		t.Fatal("a round with zero surviving updates should fail to finish")
	}
}

// TestEmptyPartyWeightingNoNaN is the regression test for the empty-party
// weighting bug: metas with N=0 (zero local samples, zero steps) must not
// produce NaN weights — FedNova's tau division and the weighted rule's
// 0/0 were both capable of poisoning the accumulator.
func TestEmptyPartyWeightingNoNaN(t *testing.T) {
	const paramLen, stateLen = 3, 4
	initial := []float64{1, -1, 0.5, 2}
	zero := make([]float64, stateLen)
	zeroC := make([]float64, paramLen)
	for _, alg := range ExtendedAlgorithms() {
		for _, unweighted := range []bool{false, true} {
			cfg, err := Config{Algorithm: alg, Unweighted: unweighted}.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			emptyUpdate := Update{Delta: zero}
			if alg == Scaffold {
				emptyUpdate.DeltaC = zeroC
			}
			live := Update{Delta: []float64{1, 2, 3, 4}, N: 10, Tau: 2}
			if alg == Scaffold {
				live.DeltaC = []float64{0.1, 0.2, 0.3}
			}

			// Mixed round: one live and one empty party.
			s := NewServer(cfg, initial, paramLen, 2)
			if err := s.Aggregate([]Update{live, emptyUpdate}); err != nil {
				t.Fatalf("%s mixed: %v", alg, err)
			}
			for i, v := range s.State() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s unweighted=%v mixed round: state[%d] = %v", alg, unweighted, i, v)
				}
			}

			// All-empty round: totalN == 0 used to divide 0/0.
			s = NewServer(cfg, initial, paramLen, 2)
			e2 := emptyUpdate
			e2.Delta = append([]float64{}, zero...)
			if err := s.Aggregate([]Update{emptyUpdate, e2}); err != nil {
				t.Fatalf("%s all-empty: %v", alg, err)
			}
			for i, v := range s.State() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s unweighted=%v all-empty round: state[%d] = %v", alg, unweighted, i, v)
				}
				if v != initial[i] && alg != FedDyn {
					// Zero deltas must leave the state untouched (FedDyn's
					// h-correction also stays zero but check only NaN there).
					t.Fatalf("%s: all-zero round moved state[%d] from %v to %v", alg, i, initial[i], v)
				}
			}
		}
	}
}

// TestSimulationChunkedBitIdentical runs the same federation with
// whole-update and chunked in-process delivery and demands bitwise equal
// results: chunking must change memory behaviour only, never arithmetic.
func TestSimulationChunkedBitIdentical(t *testing.T) {
	for _, alg := range []Algorithm{FedAvg, FedNova, Scaffold} {
		cfg := quickCfg(alg)
		cfg.Rounds = 2
		whole, err := buildSim(t, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		cfgChunked := cfg
		cfgChunked.ChunkSize = 97 // deliberately misaligned with the state length
		chunked, err := buildSim(t, cfgChunked).Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(whole.FinalState) != len(chunked.FinalState) {
			t.Fatalf("%s: state length %d vs %d", alg, len(whole.FinalState), len(chunked.FinalState))
		}
		for i := range whole.FinalState {
			if whole.FinalState[i] != chunked.FinalState[i] {
				t.Fatalf("%s: state[%d] whole %v vs chunked %v", alg, i, whole.FinalState[i], chunked.FinalState[i])
			}
		}
		for r := range whole.Curve {
			if whole.Curve[r].TrainLoss != chunked.Curve[r].TrainLoss ||
				whole.Curve[r].TestAccuracy != chunked.Curve[r].TestAccuracy {
				t.Fatalf("%s round %d: metrics diverged", alg, r)
			}
		}
	}
}

// TestChunkWindowNormalize pins the ChunkWindow config contract: zero
// takes the default, explicit widths survive, negatives are rejected.
func TestChunkWindowNormalize(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.ChunkWindow != 4 {
		t.Fatalf("default chunk window %d, want 4", c.ChunkWindow)
	}
	c, err = Config{ChunkWindow: 9}.Normalize()
	if err != nil || c.ChunkWindow != 9 {
		t.Fatalf("explicit chunk window: %d, %v", c.ChunkWindow, err)
	}
	if _, err := (Config{ChunkWindow: -1}).Normalize(); err == nil {
		t.Fatal("negative chunk window should be rejected")
	}
}

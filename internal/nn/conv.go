package nn

import (
	"fmt"
	"math"

	"github.com/niid-bench/niidbench/internal/rng"
	"github.com/niid-bench/niidbench/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs, implemented as im2col
// followed by a matrix product. The weight is stored as
// (inC*kh*kw, outC) so the forward pass is a single matmul on the patch
// matrix. All intermediates live in per-layer scratch buffers that are
// reused across Forward/Backward calls, so steady-state training does not
// allocate.
type Conv2D struct {
	InC, OutC     int
	KH, KW        int
	Stride, Pad   int
	W, B          *Param
	cols          *tensor.Tensor // cached im2col of the input
	inB, inH, inW int            // cached input geometry
	outH, outW    int
	// scratch buffers, grown on demand and reused across batches
	prod  *tensor.Tensor // forward matmul result (rows layout)
	out   *tensor.Tensor // forward output (NCHW)
	gcols *tensor.Tensor // backward: gradient in rows layout
	dw    *tensor.Tensor // backward: weight-gradient accumulator
	dcols *tensor.Tensor // backward: column gradient
	dx    *tensor.Tensor // backward: input gradient (NCHW)
}

// NewConv2D creates a convolution layer with He-uniform initialization.
func NewConv2D(inC, outC, kh, kw, stride, pad int, r *rng.RNG) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		W: newParam("conv.W", inC*kh*kw, outC),
		B: newParam("conv.b", outC),
	}
	fanIn := float64(inC * kh * kw)
	bound := math.Sqrt(6.0 / fanIn)
	w := c.W.Data.Data()
	for i := range w {
		w[i] = (2*r.Float64() - 1) * bound
	}
	return c
}

// Forward computes the convolution of x (batch, inC, H, W). The returned
// tensor is layer-owned scratch, valid until the next Forward call.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input shape %v, want [N %d H W]", x.Shape(), c.InC))
	}
	c.inB, c.inH, c.inW = x.Dim(0), x.Dim(2), x.Dim(3)
	c.outH = tensor.ConvOutSize(c.inH, c.KH, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(c.inW, c.KW, c.Stride, c.Pad)
	rows := c.inB * c.outH * c.outW
	c.cols = tensor.Ensure(c.cols, rows, c.InC*c.KH*c.KW)
	tensor.Im2ColInto(c.cols, x, c.KH, c.KW, c.Stride, c.Pad)
	// (B*oh*ow, inC*kh*kw) @ (inC*kh*kw, outC) -> (B*oh*ow, outC)
	c.prod = tensor.Ensure(c.prod, rows, c.OutC)
	tensor.MatMulInto(c.prod, c.cols, c.W.Data)
	c.prod.AddRowVector(c.B.Data)
	c.out = tensor.Ensure(c.out, c.inB, c.OutC, c.outH, c.outW)
	rowsToNCHWInto(c.out, c.prod)
	return c.out
}

// Backward accumulates weight/bias gradients and returns the input
// gradient (layer-owned scratch, valid until the next Backward call).
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	rows := c.inB * c.outH * c.outW
	c.gcols = tensor.Ensure(c.gcols, rows, c.OutC) // (B*oh*ow, outC)
	nchwToRowsInto(c.gcols, grad)
	// dW += colsᵀ @ gcols
	c.dw = tensor.Ensure(c.dw, c.W.Data.Dim(0), c.W.Data.Dim(1))
	tensor.MatMulTransAInto(c.dw, c.cols, c.gcols)
	tensor.AddInto(c.W.Grad, c.W.Grad, c.dw)
	// db += column sums
	c.gcols.ColSumsInto(c.B.Grad)
	// dcols = gcols @ Wᵀ, then scatter back to image shape.
	c.dcols = tensor.Ensure(c.dcols, rows, c.W.Data.Dim(0))
	tensor.MatMulTransBInto(c.dcols, c.gcols, c.W.Data)
	c.dx = tensor.Ensure(c.dx, c.inB, c.InC, c.inH, c.inW)
	return tensor.Col2ImInto(c.dx, c.dcols, c.KH, c.KW, c.Stride, c.Pad)
}

// Params returns the kernel and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// rowsToNCHWInto rearranges a (B*H*W, C) row matrix into the NCHW tensor
// out; every element of out is written.
func rowsToNCHWInto(out, rows *tensor.Tensor) {
	b, c, h, w := out.Dim(0), out.Dim(1), out.Dim(2), out.Dim(3)
	rd, od := rows.Data(), out.Data()
	for bi := 0; bi < b; bi++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				row := ((bi*h+y)*w + x) * c
				for ci := 0; ci < c; ci++ {
					od[((bi*c+ci)*h+y)*w+x] = rd[row+ci]
				}
			}
		}
	}
}

// nchwToRowsInto is the inverse of rowsToNCHWInto: it writes the (B*H*W, C)
// row layout of the NCHW tensor x into out.
func nchwToRowsInto(out, x *tensor.Tensor) {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	xd, od := x.Data(), out.Data()
	for bi := 0; bi < b; bi++ {
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				row := ((bi*h+y)*w + xx) * c
				for ci := 0; ci < c; ci++ {
					od[row+ci] = xd[((bi*c+ci)*h+y)*w+xx]
				}
			}
		}
	}
}

// MaxPool2D is a max pooling layer over NCHW inputs.
type MaxPool2D struct {
	K, Stride  int
	argmax     []int
	inShape    [4]int
	outH, outW int
	out        *tensor.Tensor // forward scratch
	dx         *tensor.Tensor // backward scratch
}

// NewMaxPool2D creates a pooling layer with a square window.
func NewMaxPool2D(k, stride int) *MaxPool2D {
	return &MaxPool2D{K: k, Stride: stride}
}

// Forward computes the max over each window and records the argmax for the
// backward pass.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D input shape %v, want 4-D", x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.inShape = [4]int{b, c, h, w}
	p.outH = tensor.ConvOutSize(h, p.K, p.Stride, 0)
	p.outW = tensor.ConvOutSize(w, p.K, p.Stride, 0)
	p.out = tensor.Ensure(p.out, b, c, p.outH, p.outW)
	out := p.out
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	xd, od := x.Data(), out.Data()
	oi := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			base := (bi*c + ci) * h * w
			for oy := 0; oy < p.outH; oy++ {
				for ox := 0; ox < p.outW; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							if ix >= w {
								continue
							}
							idx := base + iy*w + ix
							if xd[idx] > best {
								best = xd[idx]
								bestIdx = idx
							}
						}
					}
					od[oi] = best
					p.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to the input position that won the
// max.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.dx = tensor.Ensure(p.dx, p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3])
	p.dx.Zero()
	od, gd := p.dx.Data(), grad.Data()
	for i, idx := range p.argmax {
		od[idx] += gd[i]
	}
	return p.dx
}

// Params returns nil: pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

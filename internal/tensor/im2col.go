package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a valid convolution with
// the given input size, kernel size, stride and padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col expands image patches into matrix rows so a convolution becomes a
// matrix product. x has shape (batch, channels, height, width); the result
// has shape (batch*outH*outW, channels*kh*kw). Each row is the flattened
// receptive field for one output location.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires a 4-D tensor, got shape %v", x.shape))
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col kernel %dx%d too large for input %dx%d", kh, kw, h, w))
	}
	cols := New(b*outH*outW, c*kh*kw)
	xd, cd := x.data, cols.data
	rowLen := c * kh * kw
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((bi*outH+oy)*outW + ox) * rowLen
				for ci := 0; ci < c; ci++ {
					base := ((bi * c) + ci) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							dst := row + (ci*kh+ky)*kw + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								cd[dst] = xd[base+iy*w+ix]
							} else {
								cd[dst] = 0
							}
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters column gradients back into
// an image-shaped gradient, accumulating overlapping contributions. cols
// has shape (batch*outH*outW, channels*kh*kw); the result has shape
// (batch, channels, height, width).
func Col2Im(cols *Tensor, b, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	rowLen := c * kh * kw
	if cols.Rank() != 2 || cols.shape[0] != b*outH*outW || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v, want [%d %d]", cols.shape, b*outH*outW, rowLen))
	}
	img := New(b, c, h, w)
	xd, cd := img.data, cols.data
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((bi*outH+oy)*outW + ox) * rowLen
				for ci := 0; ci < c; ci++ {
					base := ((bi * c) + ci) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							xd[base+iy*w+ix] += cd[row+(ci*kh+ky)*kw+kx]
						}
					}
				}
			}
		}
	}
	return img
}

package consumer

import "tensor"

type holder struct{ buf *tensor.Tensor }

// paired acquires and recycles in the same function: clean.
func paired(p *tensor.Pool) float64 {
	t := p.Get(8)
	defer p.Put(t)
	return t.Data[0]
}

// pairedInClosure recycles from an error-path closure: still clean,
// the whole function body is scanned.
func pairedInClosure(p *tensor.Pool) error {
	t := p.GetRaw(8)
	fail := func() error {
		p.Put(t)
		return nil
	}
	return fail()
}

// leaks never recycles and never hands off.
func leaks(p *tensor.Pool) float64 {
	t := p.Get(8) // want `pooled tensor from Get is never returned with Put and never handed off`
	return t.Data[0]
}

// escapesUndocumented returns the buffer without saying who recycles
// it.
func escapesUndocumented(p *tensor.Pool) *tensor.Tensor {
	t := p.GetRaw(8) // want `escapes escapesUndocumented without a documented ownership transfer`
	return t
}

// escapesDocumented returns a pooled tensor; the caller owns it and
// must Put it back when done.
func escapesDocumented(p *tensor.Pool) *tensor.Tensor {
	t := p.GetRaw(8)
	return t
}

// sendsDocumented transfers a pooled tensor on ch; the receiver calls
// Put.
func sendsDocumented(p *tensor.Pool, ch chan *tensor.Tensor) {
	t := p.Get(8)
	ch <- t
}

// storesUndocumented parks the buffer in a struct with no contract.
func storesUndocumented(p *tensor.Pool, h *holder) {
	t := p.Get(8) // want `escapes storesUndocumented without a documented ownership transfer`
	h.buf = t
}

// allowed documents an intentional exception inline.
func allowed(p *tensor.Pool) float64 {
	//lint:allow poolcheck scratch lives for the process lifetime by design
	t := p.Get(8)
	return t.Data[0]
}

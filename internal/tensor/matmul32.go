package tensor

// Float32 GEMM with tile-major packed panels.
//
// Unlike the float64 kernels, which stream the operands in their natural
// layouts, the float32 path arranges both operands so every microkernel
// access is unit-stride:
//
//   - B (or op(B)) is always packed into nr32-column tile-major panels:
//     step k of the microkernel reads nr32 consecutive floats, zero-padded
//     past the matrix edge.
//   - A streams through four row pointers advancing sa elements per step.
//     When op(A)'s rows are already contiguous (plain A, and the a operand
//     of the Bᵀ variant) the kernel walks the matrix directly with sa=1 —
//     no packing, no copies. Only the Aᵀ variant, whose logical rows are
//     strided columns, packs A into mr32-row tile-major panels first and
//     walks them with sa=mr32.
//
// Packing costs O(mk + kn) copies against the O(mkn) multiply, which is
// how all three GEMM variants (plain, Aᵀ, Bᵀ) share one driver and one
// kernel. The microkernel computes a 4x16 tile (four rows by two ymm
// registers of eight float32 lanes) with AVX2+FMA (gemm32_amd64.s, gated
// on the same CPUID check as the float64 kernel); a 4x8 variant covers
// narrow column remainders, and pure-Go twins of both keep every platform
// correct.

const (
	// mr32 x nr32 is the microkernel tile: 4 rows by 16 columns (2 ymm of
	// 8 float32 lanes). 8 ymm accumulators, 2 loads and 4 broadcasts per k
	// step keep the FMA pipes saturated without spilling.
	mr32 = 4
	nr32 = 16
	// kc32 is the k-dimension blocking: one packed B panel of kc32 steps
	// (kc32*nr32*4B = 16 KiB) stays L1-resident across the whole i loop.
	kc32 = 256
	// mc32 is the dst-row blocking: a packed A block (mc32*kc32*4B =
	// 128 KiB) stays L2-resident while its B panels stream through L1.
	mc32 = 128
)

// matMul32Into computes dst = a @ b for Float32 tensors; shapes are
// validated by the dispatching wrapper.
func (c Compute) matMul32Into(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	sgemm32(c.workers(), dst.data32, a.data32, b.data32, m, n, k, k, 1, n, 1)
}

// matMulTransA32Into computes dst = aᵀ @ b with a of shape (k,m).
func (c Compute) matMulTransA32Into(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	sgemm32(c.workers(), dst.data32, a.data32, b.data32, m, n, k, 1, m, n, 1)
}

// matMulTransB32Into computes dst = a @ bᵀ with b of shape (n,k).
func (c Compute) matMulTransB32Into(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	sgemm32(c.workers(), dst.data32, a.data32, b.data32, m, n, k, k, 1, 1, k)
}

// sgemm32 computes dd = op(A) @ op(B) where op(A)'s element (i,p) lives at
// ad[i*ars + p*acs] and op(B)'s element (p,j) at bd[p*brs + j*bcs]. dd is
// (m,n) row-major and need not be pre-zeroed: the first k-block runs the
// microkernels in store mode, which overwrites every dst element, and the
// remaining k-blocks accumulate. workers bounds the goroutine fan-out.
func sgemm32(workers int, dd, ad, bd []float32, m, n, k, ars, acs, brs, bcs int) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		for i := range dd[:m*n] {
			dd[i] = 0
		}
		return
	}
	nPanels := (n + nr32 - 1) / nr32
	for p0 := 0; p0 < k; p0 += kc32 {
		kb := k - p0
		if kb > kc32 {
			kb = kc32
		}
		store := p0 == 0 // first k-block overwrites dst, the rest accumulate
		bp := Shared.getNoZero(Float32, nPanels*kb*nr32)
		packB32(bp.data32, bd, p0, kb, n, brs, bcs)
		nBlocks := (m + mc32 - 1) / mc32
		if nBlocks > 1 && m*n >= parallelThreshold && workers > 1 {
			parallelChunks(workers, nBlocks, func(c0, c1 int) {
				sgemm32Blocks(dd, ad, bp.data32, c0, c1, m, n, kb, p0, ars, acs, store)
			})
		} else {
			sgemm32Blocks(dd, ad, bp.data32, 0, nBlocks, m, n, kb, p0, ars, acs, store)
		}
		Shared.Put(bp)
	}
}

// sgemm32Blocks multiplies dst-row blocks [c0, c1) of mc32 rows each
// against the packed B panels. A packs only when op(A)'s rows are strided
// (acs != 1); each worker packs its own A block, so concurrent blocks
// never share scratch. store selects the non-accumulating microkernel
// epilogue (dst is overwritten rather than added to).
func sgemm32Blocks(dd, ad, bp []float32, c0, c1, m, n, kb, p0, ars, acs int, store bool) {
	packA := acs != 1
	var apt *Tensor
	var ap []float32
	if packA {
		apt = Shared.getNoZero(Float32, mc32*kb)
		ap = apt.data32
	}
	// tile is the edge scratch: partial tiles accumulate here first, then
	// only the in-bounds elements are added to dst.
	var tile [mr32 * nr32]float32
	for blk := c0; blk < c1; blk++ {
		i0 := blk * mc32
		mb := m - i0
		if mb > mc32 {
			mb = mc32
		}
		mPanels := (mb + mr32 - 1) / mr32
		if packA {
			packA32(ap[:mPanels*kb*mr32], ad, i0, mb, p0, kb, ars, acs)
		}
		for pj := 0; pj*nr32 < n; pj++ {
			j0 := pj * nr32
			wj := n - j0
			if wj > nr32 {
				wj = nr32
			}
			bpanel := bp[pj*kb*nr32:]
			for pi := 0; pi < mPanels; pi++ {
				i := i0 + pi*mr32
				hi := mb - pi*mr32
				if hi > mr32 {
					hi = mr32
				}
				var a0, a1, a2, a3 []float32
				sa := 1
				if packA {
					apanel := ap[pi*kb*mr32:]
					a0, a1, a2, a3 = apanel, apanel[1:], apanel[2:], apanel[3:]
					sa = mr32
				} else {
					// Raw contiguous rows; rows past the edge alias row i,
					// their results land in scratch rows that are discarded.
					a0 = ad[i*ars+p0:]
					a1, a2, a3 = a0, a0, a0
					if hi > 1 {
						a1 = ad[(i+1)*ars+p0:]
					}
					if hi > 2 {
						a2 = ad[(i+2)*ars+p0:]
					}
					if hi > 3 {
						a3 = ad[(i+3)*ars+p0:]
					}
				}
				if hi == mr32 && wj == nr32 {
					if store {
						sgemmTile16st(a0, a1, a2, a3, sa, bpanel, kb, dd[i*n+j0:], n)
					} else {
						sgemmTile16(a0, a1, a2, a3, sa, bpanel, kb, dd[i*n+j0:], n)
					}
					continue
				}
				for z := range tile {
					tile[z] = 0
				}
				if wj > 8 {
					sgemmTile16(a0, a1, a2, a3, sa, bpanel, kb, tile[:], nr32)
				} else {
					sgemmTile8(a0, a1, a2, a3, sa, bpanel, kb, tile[:], nr32)
				}
				for r := 0; r < hi; r++ {
					drow := dd[(i+r)*n+j0 : (i+r)*n+j0+wj]
					trow := tile[r*nr32:]
					if store {
						copy(drow, trow[:wj])
						continue
					}
					for c := range drow {
						drow[c] += trow[c]
					}
				}
			}
		}
	}
	if packA {
		Shared.Put(apt)
	}
}

// sgemmTile16 accumulates a full 4x16 tile: d[r*ldd+c] += sum_p
// a_r[p*sa]*b[p*16+c]. Dispatches to the AVX2+FMA microkernel when the
// CPU supports it.
func sgemmTile16(a0, a1, a2, a3 []float32, sa int, b []float32, kb int, d []float32, ldd int) {
	if useFMA32 {
		sgemm4x16s(&a0[0], &a1[0], &a2[0], &a3[0], uintptr(sa), &b[0], uintptr(kb), &d[0], uintptr(ldd))
		return
	}
	sgemm4x16go(a0, a1, a2, a3, sa, b, kb, d, ldd)
}

// sgemmTile16st is the non-accumulating (store) variant of sgemmTile16:
// d[r*ldd+c] = sum_p a_r[p*sa]*b[p*16+c]. The driver uses it for the first
// k-block so dst never needs a pre-zero pass; edge tiles still accumulate
// into zeroed scratch and copy out.
func sgemmTile16st(a0, a1, a2, a3 []float32, sa int, b []float32, kb int, d []float32, ldd int) {
	if useFMA32 {
		sgemm4x16st(&a0[0], &a1[0], &a2[0], &a3[0], uintptr(sa), &b[0], uintptr(kb), &d[0], uintptr(ldd))
		return
	}
	sgemm4x16goStore(a0, a1, a2, a3, sa, b, kb, d, ldd)
}

// sgemmTile8 is the one-ymm-wide variant for column remainders of 8 or
// fewer: it reads the same 16-wide packed B panels but touches only the
// first 8 lanes of each step.
func sgemmTile8(a0, a1, a2, a3 []float32, sa int, b []float32, kb int, d []float32, ldd int) {
	if useFMA32 {
		sgemm4x8s(&a0[0], &a1[0], &a2[0], &a3[0], uintptr(sa), &b[0], uintptr(kb), &d[0], uintptr(ldd))
		return
	}
	sgemm4x8go(a0, a1, a2, a3, sa, b, kb, d, ldd)
}

// packA32 packs rows [i0, i0+mb) of op(A), k-range [p0, p0+kb), into
// mr32-row tile-major panels: ap[panel*kb*mr32 + p*mr32 + r]. Rows past mb
// in the final panel are zero-filled so the microkernel never needs a row
// mask. Only the transposed-A variant packs (rows with acs != 1); its
// ars == 1 layout makes each packed step a contiguous 4-element copy.
func packA32(ap, ad []float32, i0, mb, p0, kb, ars, acs int) {
	mPanels := (mb + mr32 - 1) / mr32
	for pi := 0; pi < mPanels; pi++ {
		dst := ap[pi*kb*mr32:]
		rows := mb - pi*mr32
		if rows > mr32 {
			rows = mr32
		}
		base := (i0 + pi*mr32) * ars
		if rows == mr32 && ars == 1 {
			// Four adjacent op(A) rows are four adjacent source elements.
			for p := 0; p < kb; p++ {
				s := base + (p0+p)*acs
				copy(dst[p*mr32:p*mr32+mr32], ad[s:s+mr32])
			}
			continue
		}
		if rows == mr32 {
			a0 := ad[base+p0*acs:]
			a1 := ad[base+ars+p0*acs:]
			a2 := ad[base+2*ars+p0*acs:]
			a3 := ad[base+3*ars+p0*acs:]
			for p := 0; p < kb; p++ {
				s := p * acs
				q := p * mr32
				dst[q] = a0[s]
				dst[q+1] = a1[s]
				dst[q+2] = a2[s]
				dst[q+3] = a3[s]
			}
			continue
		}
		for p := 0; p < kb; p++ {
			q := p * mr32
			s := base + (p0+p)*acs
			for r := 0; r < mr32; r++ {
				if r < rows {
					dst[q+r] = ad[s+r*ars]
				} else {
					dst[q+r] = 0
				}
			}
		}
	}
}

// packB32 packs k-range [p0, p0+kb) of op(B), all n columns, into
// nr32-column tile-major panels: bp[panel*kb*nr32 + p*nr32 + c]. Columns
// past n in the final panel are zero-filled.
func packB32(bp, bd []float32, p0, kb, n, brs, bcs int) {
	nPanels := (n + nr32 - 1) / nr32
	for pj := 0; pj < nPanels; pj++ {
		dst := bp[pj*kb*nr32:]
		j0 := pj * nr32
		cols := n - j0
		if cols > nr32 {
			cols = nr32
		}
		if bcs == 1 && cols == nr32 {
			// Contiguous source rows: straight 16-float copies.
			for p := 0; p < kb; p++ {
				src := bd[(p0+p)*brs+j0:]
				copy(dst[p*nr32:p*nr32+nr32], src[:nr32])
			}
			continue
		}
		for p := 0; p < kb; p++ {
			q := p * nr32
			s := (p0+p)*brs + j0*bcs
			for c := 0; c < nr32; c++ {
				if c < cols {
					dst[q+c] = bd[s+c*bcs]
				} else {
					dst[q+c] = 0
				}
			}
		}
	}
}

// sgemm4x16go is the portable twin of the assembly microkernel: it
// accumulates the 4x16 tile in registers/stack and adds into d once.
func sgemm4x16go(a0, a1, a2, a3 []float32, sa int, b []float32, kb int, d []float32, ldd int) {
	var acc [mr32 * nr32]float32
	for p := 0; p < kb; p++ {
		brow := b[p*nr32 : p*nr32+nr32]
		s := p * sa
		ar := [mr32]float32{a0[s], a1[s], a2[s], a3[s]}
		for r := 0; r < mr32; r++ {
			av := ar[r]
			accRow := acc[r*nr32 : r*nr32+nr32]
			for c, bv := range brow {
				accRow[c] += av * bv
			}
		}
	}
	for r := 0; r < mr32; r++ {
		drow := d[r*ldd : r*ldd+nr32]
		accRow := acc[r*nr32 : r*nr32+nr32]
		for c := range drow {
			drow[c] += accRow[c]
		}
	}
}

// sgemm4x16goStore is the portable twin of the store-mode microkernel: it
// overwrites the 4x16 dst tile instead of accumulating into it.
func sgemm4x16goStore(a0, a1, a2, a3 []float32, sa int, b []float32, kb int, d []float32, ldd int) {
	var acc [mr32 * nr32]float32
	for p := 0; p < kb; p++ {
		brow := b[p*nr32 : p*nr32+nr32]
		s := p * sa
		ar := [mr32]float32{a0[s], a1[s], a2[s], a3[s]}
		for r := 0; r < mr32; r++ {
			av := ar[r]
			accRow := acc[r*nr32 : r*nr32+nr32]
			for c, bv := range brow {
				accRow[c] += av * bv
			}
		}
	}
	for r := 0; r < mr32; r++ {
		copy(d[r*ldd:r*ldd+nr32], acc[r*nr32:r*nr32+nr32])
	}
}

// sgemm4x8go is the portable twin of the 8-wide microkernel.
func sgemm4x8go(a0, a1, a2, a3 []float32, sa int, b []float32, kb int, d []float32, ldd int) {
	var acc [mr32 * 8]float32
	for p := 0; p < kb; p++ {
		brow := b[p*nr32 : p*nr32+8]
		s := p * sa
		ar := [mr32]float32{a0[s], a1[s], a2[s], a3[s]}
		for r := 0; r < mr32; r++ {
			av := ar[r]
			accRow := acc[r*8 : r*8+8]
			for c, bv := range brow {
				accRow[c] += av * bv
			}
		}
	}
	for r := 0; r < mr32; r++ {
		drow := d[r*ldd : r*ldd+8]
		accRow := acc[r*8 : r*8+8]
		for c := range drow {
			drow[c] += accRow[c]
		}
	}
}

package fl

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// This file implements buffered-asynchronous aggregation (Config.AsyncBuffer):
// the FedBuff-style relaxation of the synchronous round. The server folds
// updates the moment they arrive, each weighted by a staleness discount
// s(tau) = 1/(1+tau)^StalenessExponent where tau is how many global
// generations behind the update's base model is, and mints a new global
// generation every AsyncBuffer folds instead of barriering on the sampled
// set. A generation plays the role a round plays in the synchronous engine:
// it is the unit of metrics, evaluation cadence and checkpointing, and the
// run completes after Config.Rounds generations.
//
// Unlike the synchronous path, async runs are not bitwise reproducible —
// the fold order is the arrival order, which depends on scheduling — so
// they are characterized statistically (accuracy-vs-generations,
// accuracy-vs-wall-clock), the way the paper characterizes its algorithms.

// AsyncTransport is implemented by transports that can drive the
// buffered-async mode: RunAsync pushes every arriving update into the
// coordinator (from any number of receiver goroutines) and rebroadcasts
// the global after each flush, returning once the coordinator reports the
// run complete or the federation is lost.
type AsyncTransport interface {
	// PartyMeta returns the aggregation metadata of party id.
	PartyMeta(id int) UpdateMeta
	// RunAsync feeds updates into the coordinator until Done.
	RunAsync(c *AsyncCoordinator) error
}

// AsyncStats summarizes a buffered-async run: how many updates folded, how
// stale they were, and how many arrived too stale or malformed to use.
type AsyncStats struct {
	// Folds is the number of updates folded into flushes.
	Folds int
	// MeanStaleness and MaxStaleness describe the generation lag
	// distribution over all folded updates.
	MeanStaleness float64
	MaxStaleness  int
	// FairnessDropped counts updates discarded by the per-party fairness
	// cap (Config.AsyncFairShare): a fast party that already contributed
	// its share of the open buffer window has its surplus folds dropped so
	// one party cannot dominate a generation.
	FairnessDropped int
}

// AsyncCoordinator serializes the buffered-async aggregation: transports
// call Fold from their receiver goroutines as updates complete, and the
// coordinator owns the flush schedule, staleness weighting, metrics,
// evaluation cadence and checkpointing. All methods are safe for
// concurrent use.
type AsyncCoordinator struct {
	e  *Engine
	mu sync.Mutex

	gen    int  // completed flushes == current global generation
	done   bool // gen reached Config.Rounds
	failed error
	// buffer is the effective flush threshold: Config.AsyncBuffer clamped
	// to the party count, because each party contributes at most one
	// update per generation it receives — a threshold above the
	// population could never fill.
	buffer int

	// Flush-buffer accumulators, reset every AsyncBuffer folds.
	buffered int
	sumW     float64 // sum of discounted fold weights
	tauNum   float64 // FedNova: sum of weight*tau over the buffer
	loss     float64
	ids      []int
	lastAt   time.Time

	// live is the transport's last-reported live party count (SetLive),
	// which floors the fairness cap: cap x live must cover the buffer or a
	// depleted federation could never flush. Starts at the full population.
	live int

	// Run accumulators.
	curve   []RoundMetrics
	best    float64
	bytes   int64
	compute time.Duration
	stats   AsyncStats
	meter   byteMeter
}

func newAsyncCoordinator(e *Engine, tr AsyncTransport) *AsyncCoordinator {
	c := &AsyncCoordinator{e: e, gen: e.startRound, lastAt: time.Now()}
	if bm, ok := tr.(byteMeter); ok {
		c.meter = bm
	}
	if e.restored != nil {
		c.curve = append(c.curve, e.restored.Curve...)
		c.best = e.restored.BestAccuracy
		c.bytes = e.restored.TotalCommBytes
		c.compute = e.restored.ComputeTime
	}
	c.done = c.gen >= e.cfg.Rounds
	c.buffer = e.cfg.AsyncBuffer
	if n := e.server.numParties; n > 0 && c.buffer > n {
		c.buffer = n
	}
	c.live = e.server.numParties
	if s := e.server; s.agg == nil {
		s.agg = make([]float64, len(s.state))
	}
	return c
}

// Generation returns the current global generation (the number of
// completed flushes).
func (c *AsyncCoordinator) Generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Done reports whether the run has minted its final generation.
func (c *AsyncCoordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// Failed returns the error that poisoned the run (a flush-boundary
// checkpoint failure), or nil. Transports use it to stop feeding a run
// that can no longer complete.
func (c *AsyncCoordinator) Failed() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// GlobalSnapshot returns a copy of the current global state (and SCAFFOLD
// control variate; nil otherwise) together with the generation it belongs
// to, for broadcast to the parties.
func (c *AsyncCoordinator) GlobalSnapshot() (gen int, state, control []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	state = append([]float64{}, c.e.server.State()...)
	if sc := c.e.server.Control(); sc != nil {
		control = append([]float64{}, sc...)
	}
	return c.gen, state, control
}

// staleness returns the discount s(tau) = 1/(1+tau)^a.
func (c *AsyncCoordinator) staleness(tau int) float64 {
	return 1 / math.Pow(1+float64(tau), c.e.cfg.StalenessExponent)
}

// SetLive informs the coordinator of the transport's current live party
// count, which the fairness cap uses as its floor (see fairShareCap).
// Counts of zero or below are ignored — a momentarily empty federation
// must not freeze the cap at an unusable value.
func (c *AsyncCoordinator) SetLive(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.live = n
	c.mu.Unlock()
}

// fairShareCap is the per-party fold limit within the open buffer window:
// Config.AsyncFairShare, floored by ceil(buffer/live) so the surviving
// parties can always fill a window between them — the cap slows a fast
// party down relative to the window, it never deadlocks the flush
// schedule. Called with mu held.
func (c *AsyncCoordinator) fairShareCap() int {
	limit := c.e.cfg.AsyncFairShare
	if limit < 1 {
		limit = 1
	}
	if c.live > 0 {
		if floor := (c.buffer + c.live - 1) / c.live; floor > limit {
			limit = floor
		}
	}
	return limit
}

// countID counts id's occurrences in the open window's fold roster.
func countID(ids []int, id int) int {
	n := 0
	for _, v := range ids {
		if v == id {
			n++
		}
	}
	return n
}

// Fold folds one complete update that trained against generation
// trainedGen into the open flush buffer. It returns flushed=true when this
// fold closed a buffer and minted a new generation (the transport should
// then rebroadcast GlobalSnapshot), and done=true once the run has
// completed all configured generations — folds after that are ignored.
// A non-nil error means the update was rejected (malformed, or from a
// future generation) and the transport should evict its party; the run
// itself is not poisoned.
func (c *AsyncCoordinator) Fold(id int, u Update, trainedGen int) (flushed, done bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return false, true, nil
	}
	if c.failed != nil {
		return false, true, c.failed
	}
	s := c.e.server
	if len(u.Delta) != len(s.state) {
		return false, false, fmt.Errorf("fl: async update length %d, state %d", len(u.Delta), len(s.state))
	}
	if s.cfg.Algorithm == Scaffold && len(u.DeltaC) != s.paramLen {
		return false, false, fmt.Errorf("fl: async SCAFFOLD update control length %d, want %d", len(u.DeltaC), s.paramLen)
	}
	if !validTau(u.N, u.Tau) {
		return false, false, fmt.Errorf("fl: async update with non-positive tau %d", u.Tau)
	}
	if trainedGen < 0 || trainedGen > c.gen {
		return false, false, fmt.Errorf("fl: async update trained against generation %d, current is %d", trainedGen, c.gen)
	}
	// Per-party fairness: a party that already contributed its share of
	// this buffer window is dropped silently (not an error — the party did
	// nothing wrong, it is just fast), so one 10x-faster party cannot crowd
	// a generation with its own updates and starve the slow parties'
	// influence on the model.
	if limit := c.fairShareCap(); countID(c.ids, id) >= limit {
		c.stats.FairnessDropped++
		return false, false, nil
	}
	tau := c.gen - trainedGen
	disc := c.staleness(tau)

	// Base weight mirrors the synchronous rules — n_i (weighted), 1
	// (unweighted and FedDyn's unweighted participant mean), n_i/tau_i
	// scaled by the buffer's effective step count for FedNova — except the
	// normalizer is the flush buffer's discounted weight sum instead of a
	// round's sample, so the update magnitude stays scale-stable under any
	// mix of stalenesses.
	base := float64(u.N)
	if s.cfg.Unweighted || s.cfg.Algorithm == FedDyn {
		base = 1
	}
	w := base * disc
	fold := w
	if s.cfg.Algorithm == FedNova {
		if u.Tau == 0 {
			fold = 0
		} else {
			fold = w / float64(u.Tau)
		}
		c.tauNum += w * float64(u.Tau)
	}
	for i, d := range u.Delta {
		s.agg[i] += fold * d
	}
	if s.cfg.Algorithm == FedDyn {
		for i := 0; i < s.paramLen; i++ {
			s.dynH[i] += disc * s.cfg.Alpha * u.Delta[i] / float64(s.numParties)
		}
	}
	if s.cfg.Algorithm == Scaffold {
		for i, d := range u.DeltaC {
			s.control[i] += disc * d / float64(s.numParties)
		}
	}
	c.sumW += w
	c.buffered++
	c.loss += u.TrainLoss
	c.ids = append(c.ids, id)
	c.stats.Folds++
	c.stats.MeanStaleness += float64(tau) // sum; divided at Result assembly
	if tau > c.stats.MaxStaleness {
		c.stats.MaxStaleness = tau
	}
	if c.buffered < c.buffer {
		return false, false, nil
	}
	if err := c.flush(); err != nil {
		c.failed = err
		return true, true, err
	}
	return true, c.done, nil
}

// flush closes the buffer: normalizes the accumulator by the discounted
// weight sum, applies it through the server optimizer, records the
// generation's metrics, evaluates on cadence and checkpoints. Called with
// mu held.
func (c *AsyncCoordinator) flush() error {
	s := c.e.server
	scale := 0.0
	if c.sumW > 0 {
		if s.cfg.Algorithm == FedNova {
			// agg holds sum(w_i/tau_i * delta_i); the effective step count
			// over the buffer is tauNum/sumW, and each weight normalizes by
			// sumW, so the net scalar is tauNum/sumW^2.
			scale = c.tauNum / (c.sumW * c.sumW)
		} else {
			scale = 1 / c.sumW
		}
	}
	if scale != 0 {
		for i := range s.agg {
			s.agg[i] *= scale
		}
		s.applyUpdate(s.agg)
		if s.cfg.Algorithm == FedDyn {
			for i := 0; i < s.paramLen; i++ {
				s.state[i] -= s.dynH[i] / s.cfg.Alpha
			}
		}
	}
	for i := range s.agg {
		s.agg[i] = 0
	}

	g := c.gen
	c.gen++
	c.done = c.gen >= c.e.cfg.Rounds
	now := time.Now()
	m := RoundMetrics{
		Round:        g,
		TestAccuracy: -1,
		TrainLoss:    c.loss / float64(c.buffered),
		Duration:     now.Sub(c.lastAt),
		Sampled:      append([]int(nil), c.ids...),
	}
	c.lastAt = now
	if c.meter != nil {
		m.CommBytes = c.meter.RoundBytes()
	}
	c.compute += m.Duration
	if (g+1)%c.e.cfg.EvalEvery == 0 || g == c.e.cfg.Rounds-1 {
		if c.e.eval != nil {
			m.TestAccuracy = c.e.eval.Accuracy(s.State())
			if m.TestAccuracy > c.best {
				c.best = m.TestAccuracy
			}
		}
	}
	c.curve = append(c.curve, m)
	c.bytes += m.CommBytes
	c.buffered = 0
	c.sumW = 0
	c.tauNum = 0
	c.loss = 0
	c.ids = c.ids[:0]
	return c.checkpoint(g)
}

// checkpoint fires the engine's Checkpoint hook on the configured cadence,
// treating one generation as one round. Called with mu held.
func (c *AsyncCoordinator) checkpoint(g int) error {
	e := c.e
	if e.Checkpoint == nil {
		return nil
	}
	every := e.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if (g+1)%every != 0 && g != e.cfg.Rounds-1 {
		return nil
	}
	if err := e.Checkpoint(e.Snapshot(g+1, c.curve, c.best, c.bytes, c.compute)); err != nil {
		return fmt.Errorf("fl: generation %d checkpoint: %w", g, err)
	}
	return nil
}

// RunAsync executes a buffered-async federation over the transport and
// assembles the Result. The transport owns delivery and broadcast; the
// coordinator owns aggregation, staleness weighting, metrics and
// durability. Requires Config.AsyncBuffer > 0.
func (e *Engine) RunAsync(tr AsyncTransport) (*Result, error) {
	if e.cfg.AsyncBuffer <= 0 {
		return nil, fmt.Errorf("fl: RunAsync needs AsyncBuffer > 0")
	}
	c := newAsyncCoordinator(e, tr)
	if err := tr.RunAsync(c); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	if !c.done {
		return nil, fmt.Errorf("fl: async transport stopped at generation %d of %d", c.gen, e.cfg.Rounds)
	}
	res := &Result{
		Config:         e.cfg,
		ParamCount:     e.server.paramLen,
		StateCount:     len(e.server.State()),
		Curve:          c.curve,
		BestAccuracy:   c.best,
		TotalCommBytes: c.bytes,
		ComputeTime:    c.compute,
		FinalState:     append([]float64{}, e.server.State()...),
	}
	stats := c.stats
	if stats.Folds > 0 {
		stats.MeanStaleness /= float64(stats.Folds)
	}
	res.Async = &stats
	if len(res.Curve) > 0 {
		res.CommBytesPerRound = float64(res.TotalCommBytes) / float64(len(res.Curve))
		res.FinalAccuracy = res.Curve[len(res.Curve)-1].TestAccuracy
	}
	return res, nil
}

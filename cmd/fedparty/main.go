// Command fedparty runs one data silo of a multi-process federated
// deployment: it regenerates its local shard deterministically from the
// shared flags, dials the fedserver address and participates in training
// until the server shuts the federation down.
//
// See cmd/fedserver for the launch recipe. The only party-specific flags
// are -index (which shard this process owns) and -addr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/niid-bench/niidbench/internal/fedcli"
	"github.com/niid-bench/niidbench/internal/simnet"
)

func main() {
	fs := flag.NewFlagSet("fedparty", flag.ExitOnError)
	var shared fedcli.Shared
	shared.Register(fs)
	addr := fs.String("addr", "127.0.0.1:7070", "fedserver address to dial")
	index := fs.Int("index", 0, "this party's shard index in [0, parties)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	cfg, spec, locals, _, err := shared.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := shared.Validate(*index); err != nil {
		log.Fatal(err)
	}
	local := locals[*index]
	fmt.Printf("fedparty %d: %d local samples, dialing %s (wire protocol v%d)\n",
		*index, local.Len(), *addr, simnet.ProtoVersion)
	if err := simnet.DialPartyOpts(*addr, *index, local, spec, cfg, shared.PartySeed(*index), shared.PartyOptions()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fedparty %d: federation complete\n", *index)
}

package fedcli

import (
	"flag"
	"testing"
)

func parse(t *testing.T, args ...string) *Shared {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var s Shared
	s.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &s
}

func TestBuildDeterministicAcrossProcesses(t *testing.T) {
	// Two independent Shared values with the same flags must produce
	// identical local shards — the contract multi-process federation
	// relies on.
	args := []string{"-dataset", "adult", "-parties", "3", "-train", "200", "-test", "50", "-seed", "9"}
	a, b := parse(t, args...), parse(t, args...)
	_, _, localsA, testA, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, _, localsB, testB, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(localsA) != 3 || len(localsB) != 3 {
		t.Fatalf("parties: %d/%d", len(localsA), len(localsB))
	}
	for p := range localsA {
		if localsA[p].Len() != localsB[p].Len() {
			t.Fatalf("party %d sizes differ", p)
		}
		for i := range localsA[p].X {
			if localsA[p].X[i] != localsB[p].X[i] {
				t.Fatalf("party %d features differ at %d", p, i)
			}
		}
	}
	for i := range testA.X {
		if testA.X[i] != testB.X[i] {
			t.Fatal("test sets differ")
		}
	}
}

func TestBuildSeedChangesData(t *testing.T) {
	a := parse(t, "-dataset", "adult", "-train", "200", "-test", "50", "-seed", "1")
	b := parse(t, "-dataset", "adult", "-train", "200", "-test", "50", "-seed", "2")
	_, _, localsA, _, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, _, localsB, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range localsA[0].X {
		if i < len(localsB[0].X) && localsA[0].X[i] != localsB[0].X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical shards")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, _, _, err := parse(t, "-dataset", "nope").Build(); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if _, _, _, _, err := parse(t, "-algo", "nope").Build(); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	if _, _, _, _, err := parse(t, "-partition", "nope").Build(); err == nil {
		t.Fatal("expected error for unknown partition")
	}
}

func TestValidateIndex(t *testing.T) {
	s := parse(t, "-parties", "4")
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err == nil {
		t.Fatal("expected error for index == parties")
	}
	if err := s.Validate(-1); err == nil {
		t.Fatal("expected error for negative index")
	}
}

func TestPartySeedsDistinct(t *testing.T) {
	s := parse(t)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		seed := s.PartySeed(i)
		if seen[seed] {
			t.Fatalf("duplicate party seed %d", seed)
		}
		seen[seed] = true
	}
}

func TestFCubeForcesFourParties(t *testing.T) {
	s := parse(t, "-dataset", "fcube", "-partition", "feature-synthetic", "-parties", "10", "-train", "400", "-test", "100")
	_, _, locals, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(locals) != 4 {
		t.Fatalf("fcube parties: %d", len(locals))
	}
}

package simnet

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/niid-bench/niidbench/internal/data"
	"github.com/niid-bench/niidbench/internal/fl"
	"github.com/niid-bench/niidbench/internal/partition"
	"github.com/niid-bench/niidbench/internal/rng"
)

func TestCodecRoundTripUpdateChunk(t *testing.T) {
	in := UpdateChunkMsg{Round: 9, Offset: 128, Total: 131, N: 55, Tau: 4,
		Last: true, TrainLoss: 0.75, Chunk: []float64{1.5, -2, 3}}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(UpdateChunkMsg)
	if got.Round != 9 || got.Offset != 128 || got.Total != 131 || got.N != 55 ||
		got.Tau != 4 || !got.Last || got.TrainLoss != 0.75 || len(got.Chunk) != 3 || got.Chunk[1] != -2 {
		t.Fatalf("round trip: %+v", got)
	}
	// The pooled-decode path must land in the caller's buffer.
	buf := make([]float64, 8)
	got2, err := UnmarshalChunkInto(b, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got2.Chunk[0] != &buf[0] {
		t.Fatal("UnmarshalChunkInto did not reuse the caller's buffer")
	}
	if got2.Chunk[2] != 3 {
		t.Fatalf("pooled decode: %+v", got2)
	}
	if _, err := UnmarshalChunkInto([]byte{msgGlobal, 0}, buf); err == nil {
		t.Fatal("UnmarshalChunkInto should reject non-chunk messages")
	}
}

func TestCodecRoundTripHelloToken(t *testing.T) {
	in := HelloMsg{ID: 3, N: 200, Token: "s3cr3t", LabelDist: []float64{0.25, 0.75}}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(HelloMsg)
	if got.ID != 3 || got.N != 200 || got.Token != "s3cr3t" || len(got.LabelDist) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	long := make([]byte, maxTokenLen+1)
	if _, err := Marshal(HelloMsg{Token: string(long)}); err == nil {
		t.Fatal("oversized token should fail to marshal")
	}
}

func TestCodecChunkTruncations(t *testing.T) {
	msg, err := Marshal(UpdateChunkMsg{Round: 1, Offset: 2, Total: 5, N: 4, Tau: 3,
		TrainLoss: 0.5, Chunk: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(msg); cut++ {
		if _, err := Unmarshal(msg[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(msg))
		}
	}
}

// jitterConn delays every send by a pseudo-random few hundred
// microseconds, so concurrent parties' chunk frames interleave thoroughly
// on the server even when local training is fast.
type jitterConn struct {
	Conn
	r *rng.RNG
}

func (j *jitterConn) Send(b []byte) error {
	time.Sleep(time.Duration(j.r.Intn(400)) * time.Microsecond)
	return j.Conn.Send(b)
}

// TestChunkedTCPOutOfOrderMatchesPipes runs the same chunked federation
// twice — over in-memory pipes and over TCP with per-party send jitter
// forcing heavy cross-party interleaving of chunk frames — and demands
// bitwise-identical final states. The fold must be deterministic in
// sampled order no matter how frames arrive; run with -race this is also
// the concurrency regression test for the chunked receive path.
func TestChunkedTCPOutOfOrderMatchesPipes(t *testing.T) {
	cfg, locals, test := smallFederation(t)
	cfg.Algorithm = fl.Scaffold // exercises the two-vector stream
	cfg.Rounds = 3
	cfg.ChunkSize = 37 // tiny frames => many interleavings
	spec, _ := data.Model("adult")

	viaPipes, err := RunLocal(cfg, spec, locals, test)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr()
	type serveResult struct {
		res *fl.Result
		err error
	}
	resCh := make(chan serveResult, 1)
	go func() {
		res, err := ln.AcceptAndRun(len(locals), cfg, spec, test)
		resCh <- serveResult{res, err}
	}()
	var wg sync.WaitGroup
	for i, ds := range locals {
		wg.Add(1)
		go func(i int, ds *data.Dataset) {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("party %d dial: %v", i, err)
				return
			}
			defer c.Close()
			conn := &jitterConn{Conn: NewTCPConn(c), r: rng.New(uint64(900 + i))}
			// Same party seeds as RunLocal, so the trained updates are
			// bitwise identical and only the transport differs.
			if err := ServeParty(conn, i, ds, spec, cfg, cfg.Seed+uint64(i)*7919+13, ""); err != nil {
				t.Errorf("party %d: %v", i, err)
			}
		}(i, ds)
	}
	sr := <-resCh
	wg.Wait()
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	if len(sr.res.FinalState) != len(viaPipes.FinalState) {
		t.Fatalf("state length %d vs %d", len(sr.res.FinalState), len(viaPipes.FinalState))
	}
	for i := range viaPipes.FinalState {
		if sr.res.FinalState[i] != viaPipes.FinalState[i] {
			t.Fatalf("state[%d]: tcp %v vs pipes %v", i, sr.res.FinalState[i], viaPipes.FinalState[i])
		}
	}
	for r := range viaPipes.Curve {
		if sr.res.Curve[r].TrainLoss != viaPipes.Curve[r].TrainLoss {
			t.Fatalf("round %d: loss tcp %v vs pipes %v", r, sr.res.Curve[r].TrainLoss, viaPipes.Curve[r].TrainLoss)
		}
	}
}

// TestChunkedMatchesWholeOverPipes pins end-to-end bit-identity of the
// wire chunking itself: the same federation with whole-update frames and
// with chunked frames must produce identical state trajectories.
func TestChunkedMatchesWholeOverPipes(t *testing.T) {
	cfg, locals, test := smallFederation(t)
	cfg.Rounds = 3
	spec, _ := data.Model("adult")
	whole, err := RunLocal(cfg, spec, locals, test)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ChunkSize = 101
	chunked, err := RunLocal(cfg, spec, locals, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range whole.FinalState {
		if whole.FinalState[i] != chunked.FinalState[i] {
			t.Fatalf("state[%d]: whole %v vs chunked %v", i, whole.FinalState[i], chunked.FinalState[i])
		}
	}
	if chunked.TotalCommBytes <= whole.TotalCommBytes {
		t.Fatalf("chunked framing should cost slightly more wire bytes: %d vs %d",
			chunked.TotalCommBytes, whole.TotalCommBytes)
	}
}

// rawParty connects a scripted protocol peer: hello, then a custom reply
// per round — used to inject malformed traffic.
func rawParty(t *testing.T, conn Conn, hello HelloMsg, reply func(round int, g GlobalMsg) error) {
	t.Helper()
	b, err := Marshal(hello)
	if err != nil {
		t.Errorf("rawParty marshal: %v", err)
		return
	}
	if err := conn.Send(b); err != nil {
		t.Errorf("rawParty hello: %v", err)
		return
	}
	for {
		raw, err := conn.Recv()
		if err != nil {
			return // server closed us (or shut down)
		}
		msg, err := Unmarshal(raw)
		if err != nil {
			return
		}
		var g GlobalMsg
		switch m := msg.(type) {
		case GlobalMsg:
			g = m
		case GlobalRefMsg:
			// Interned pipe broadcast: resolve the shared buffer like a
			// real party would.
			if g, err = takeGlobalRef(conn, m); err != nil {
				t.Errorf("rawParty ref: %v", err)
				return
			}
		default:
			return // shutdown
		}
		if err := reply(g.Round, g); err != nil {
			return
		}
	}
}

// TestMalformedChunkStreamDropsParty wires two honest parties and one
// that streams overlapping chunk offsets every round. The malformed
// stream must cost only that party: every round completes from the
// survivors, reports the rogue in Dropped, and the final state is finite.
func TestMalformedChunkStreamDropsParty(t *testing.T) {
	train, test, err := data.Load("adult", data.Config{TrainN: 600, TestN: 200, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	_, locals, err := partition.Strategy{Kind: partition.Homogeneous}.Split(train, 2, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := data.Model("adult")
	cfg := fl.Config{Algorithm: fl.FedAvg, Rounds: 3, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, ChunkSize: 64}
	cfg, err = cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	const parties = 3
	const rogue = 2
	conns := make([]*CountingConn, parties)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		serverSide, partySide := Pipe()
		conns[i] = NewCountingConn(serverSide)
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			if err := ServeParty(conn, i, locals[i], spec, cfg, cfg.Seed+uint64(i), ""); err != nil {
				t.Errorf("party %d: %v", i, err)
			}
		}(i, partySide)
	}
	serverSide, rogueSide := Pipe()
	conns[rogue] = NewCountingConn(serverSide)
	rogueN := 100
	rogueTau := fl.PredictTau(cfg, rogueN)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rawParty(t, rogueSide, HelloMsg{ID: rogue, N: rogueN, LabelDist: []float64{0.5, 0.5}},
			func(round int, g GlobalMsg) error {
				total := len(g.State)
				junk := make([]float64, 64)
				frames := []UpdateChunkMsg{
					{Round: round, Offset: 0, Total: total, N: rogueN, Tau: rogueTau, Chunk: junk},
					// Overlapping offset: must be rejected and the party dropped.
					{Round: round, Offset: 32, Total: total, N: rogueN, Tau: rogueTau, Chunk: junk, Last: 96 == total},
					{Round: round, Offset: total - 64, Total: total, N: rogueN, Tau: rogueTau, Chunk: junk, Last: true},
				}
				for _, f := range frames {
					b, err := Marshal(f)
					if err != nil {
						return err
					}
					if err := rogueSide.Send(b); err != nil {
						return err
					}
				}
				return nil
			})
	}()

	fed := &Federation{Cfg: cfg, Spec: cfg.ResolveSpec(spec), Test: test, conns: conns, local: true}
	res, err := fed.serve(parties)
	wg.Wait()
	if err != nil {
		t.Fatalf("federation should survive a malformed stream: %v", err)
	}
	if len(res.Curve) != cfg.Rounds {
		t.Fatalf("rounds: %d", len(res.Curve))
	}
	assertEvictedAt(t, res.Curve, rogue, 0)
	for i, v := range res.FinalState {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("state[%d] = %v after dropped rounds", i, v)
		}
	}
	if res.FinalAccuracy < 0.55 {
		t.Fatalf("survivor-only federation should still learn: accuracy %v", res.FinalAccuracy)
	}
}

// assertEvictedAt asserts the membership contract around a mid-round
// violation: the offender is dropped in the round that caught it, and —
// sampling being liveness-aware — excluded from every later round's
// sample instead of being re-dropped round after round.
func assertEvictedAt(t *testing.T, curve []fl.RoundMetrics, id, evictRound int) {
	t.Helper()
	found := false
	for _, d := range curve[evictRound].Dropped {
		found = found || d == id
	}
	if !found {
		t.Fatalf("round %d did not drop party %d (dropped=%v)", evictRound, id, curve[evictRound].Dropped)
	}
	for _, m := range curve[evictRound+1:] {
		for _, s := range m.Sampled {
			if s == id {
				t.Fatalf("round %d sampled party %d after its eviction", m.Round, id)
			}
		}
	}
}

// TestHandshakeHardening connects a parade of invalid clients — garbage
// hello, out-of-range ID, wrong token, duplicate ID — before and among
// the legitimate parties. Each invalid connection must be rejected on its
// own; the federation completes once the real parties arrive.
func TestHandshakeHardening(t *testing.T) {
	cfg, locals, test := smallFederation(t)
	cfg.Rounds = 2
	spec, _ := data.Model("adult")
	const token = "hunter2"

	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ln.Token = token
	var mu sync.Mutex
	var rejections []error
	ln.OnReject = func(err error) {
		mu.Lock()
		rejections = append(rejections, err)
		mu.Unlock()
	}
	addr := ln.Addr()
	type serveResult struct {
		res *fl.Result
		err error
	}
	resCh := make(chan serveResult, 1)
	go func() {
		res, err := ln.AcceptAndRun(len(locals), cfg, spec, test)
		resCh <- serveResult{res, err}
	}()

	dialRaw := func(payload []byte) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Errorf("rogue dial: %v", err)
			return
		}
		conn := NewTCPConn(c)
		_ = conn.Send(payload)
		// The server must close us; wait for it so the rejection is
		// registered before the test asserts.
		_, _ = conn.Recv()
		_ = conn.Close()
	}
	garbage := []byte{0xde, 0xad, 0xbe, 0xef}
	outOfRange, _ := Marshal(HelloMsg{ID: 99, N: 10, Token: token, LabelDist: []float64{1}})
	badToken, _ := Marshal(HelloMsg{ID: 0, N: 10, Token: "wrong", LabelDist: []float64{1}})

	dialRaw(garbage)
	dialRaw(outOfRange)
	dialRaw(badToken)

	var wg sync.WaitGroup
	for i, ds := range locals {
		wg.Add(1)
		go func(i int, ds *data.Dataset) {
			defer wg.Done()
			if err := DialParty(addr, i, ds, spec, cfg, uint64(300+i), token); err != nil {
				t.Errorf("party %d: %v", i, err)
			}
		}(i, ds)
	}
	sr := <-resCh
	wg.Wait()
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	if sr.res.FinalAccuracy < 0.55 {
		t.Fatalf("federation accuracy %v", sr.res.FinalAccuracy)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rejections) < 3 {
		t.Fatalf("expected at least 3 rejections (garbage, range, token), got %v", rejections)
	}
}

// TestRecvLimitRejectsBeforeRead pins the pre-read frame bound: a TCP
// frame whose length prefix exceeds the configured limit must be refused
// without reading (or allocating) its body.
func TestRecvLimitRejectsBeforeRead(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	recv := NewTCPConn(a)
	recv.(*tcpConn).SetRecvLimit(50)
	done := make(chan error, 1)
	go func() {
		_, err := recv.Recv()
		done <- err
	}()
	// Write only the 4-byte header declaring a frame far above the limit;
	// if Recv waited for the body this would deadlock, proving it streams
	// the allocation — rejection must come from the header alone.
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0x0f
	if _, err := b.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("oversized frame declaration was accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not reject the oversized declaration from the header")
	}
	// Within the limit still works.
	recv2 := NewTCPConn(b)
	go func() {
		if err := NewTCPConn(a).(*tcpConn).Send([]byte("ok")); err != nil {
			t.Error(err)
		}
	}()
	msg, err := recv2.Recv()
	if err != nil || string(msg) != "ok" {
		t.Fatalf("in-limit frame: %q %v", msg, err)
	}
}

// TestOversizedChunkFrameDropsParty sends the whole update as one giant
// frame despite a small negotiated chunk size. The memory contract must
// hold: the frame is rejected and the party dropped, not buffered.
func TestOversizedChunkFrameDropsParty(t *testing.T) {
	train, test, err := data.Load("adult", data.Config{TrainN: 400, TestN: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	_, locals, err := partition.Strategy{Kind: partition.Homogeneous}.Split(train, 2, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := data.Model("adult")
	cfg, err := fl.Config{Algorithm: fl.FedAvg, Rounds: 2, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, ChunkSize: 64}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	const parties = 3
	const rogue = 2
	conns := make([]*CountingConn, parties)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		serverSide, partySide := Pipe()
		conns[i] = NewCountingConn(serverSide)
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			if err := ServeParty(conn, i, locals[i], spec, cfg, cfg.Seed+uint64(i), ""); err != nil {
				t.Errorf("party %d: %v", i, err)
			}
		}(i, partySide)
	}
	serverSide, rogueSide := Pipe()
	conns[rogue] = NewCountingConn(serverSide)
	rogueN := 50
	rogueTau := fl.PredictTau(cfg, rogueN)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rawParty(t, rogueSide, HelloMsg{ID: rogue, N: rogueN, LabelDist: []float64{0.5, 0.5}},
			func(round int, g GlobalMsg) error {
				total := len(g.State)
				b, err := Marshal(UpdateChunkMsg{Round: round, Offset: 0, Total: total,
					N: rogueN, Tau: rogueTau, Last: true, Chunk: make([]float64, total)})
				if err != nil {
					return err
				}
				return rogueSide.Send(b)
			})
	}()
	fed := &Federation{Cfg: cfg, Spec: cfg.ResolveSpec(spec), Test: test, conns: conns, local: true}
	res, err := fed.serve(parties)
	wg.Wait()
	if err != nil {
		t.Fatalf("federation should survive an oversized frame: %v", err)
	}
	assertEvictedAt(t, res.Curve, rogue, 0)
}

// TestRoundTimeoutEvictsSilentParty admits a party that hellos correctly
// and then never replies to any round. With RoundTimeout set, the server
// must evict it instead of wedging the round forever.
func TestRoundTimeoutEvictsSilentParty(t *testing.T) {
	cfg, locals, test := smallFederation(t)
	cfg.Rounds = 2
	cfg.ChunkSize = 128
	spec, _ := data.Model("adult")
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Generous against race-detector slowdowns: honest parties train in
	// tens of milliseconds; only the mute one should ever hit this.
	ln.RoundTimeout = 1500 * time.Millisecond
	addr := ln.Addr()
	const parties = 4 // 3 honest + 1 mute
	type serveResult struct {
		res *fl.Result
		err error
	}
	resCh := make(chan serveResult, 1)
	go func() {
		res, err := ln.AcceptAndRun(parties, cfg, spec, test)
		resCh <- serveResult{res, err}
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Errorf("mute dial: %v", err)
			return
		}
		defer c.Close()
		conn := NewTCPConn(c)
		b, _ := Marshal(HelloMsg{ID: 3, N: 40, LabelDist: []float64{0.5, 0.5}})
		if err := conn.Send(b); err != nil {
			t.Errorf("mute hello: %v", err)
			return
		}
		// Read broadcasts but never reply; stop when the server closes us.
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	}()
	for i, ds := range locals {
		wg.Add(1)
		go func(i int, ds *data.Dataset) {
			defer wg.Done()
			if err := DialParty(addr, i, ds, spec, cfg, uint64(500+i), ""); err != nil {
				t.Errorf("party %d: %v", i, err)
			}
		}(i, ds)
	}
	sr := <-resCh
	wg.Wait()
	if sr.err != nil {
		t.Fatalf("federation should survive a mute party: %v", sr.err)
	}
	assertEvictedAt(t, sr.res.Curve, 3, 0)
	if sr.res.FinalAccuracy < 0.55 {
		t.Fatalf("accuracy %v", sr.res.FinalAccuracy)
	}
}

// TestDeadPartyEvictedNotFatal kills one party after its first-round
// reply. In chunked mode the federation must evict it — no broadcast to
// the dead conn, no second receiver, no abort — and complete every
// remaining round from the survivors.
func TestDeadPartyEvictedNotFatal(t *testing.T) {
	train, test, err := data.Load("adult", data.Config{TrainN: 600, TestN: 200, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	_, locals, err := partition.Strategy{Kind: partition.Homogeneous}.Split(train, 2, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := data.Model("adult")
	cfg, err := fl.Config{Algorithm: fl.FedAvg, Rounds: 4, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, ChunkSize: 64}.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	const parties = 3
	const mortal = 2
	conns := make([]*CountingConn, parties)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		serverSide, partySide := Pipe()
		conns[i] = NewCountingConn(serverSide)
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			if err := ServeParty(conn, i, locals[i], spec, cfg, cfg.Seed+uint64(i), ""); err != nil {
				t.Errorf("party %d: %v", i, err)
			}
		}(i, partySide)
	}
	serverSide, mortalSide := Pipe()
	conns[mortal] = NewCountingConn(serverSide)
	mortalN := 80
	mortalTau := fl.PredictTau(cfg, mortalN)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rawParty(t, mortalSide, HelloMsg{ID: mortal, N: mortalN, LabelDist: []float64{0.5, 0.5}},
			func(round int, g GlobalMsg) error {
				if round > 0 {
					return mortalSide.Close() // die after round 0
				}
				// A fully valid zero-delta stream for round 0.
				total := len(g.State)
				buf := make([]float64, g.Chunk)
				for off := 0; off < total; off += g.Chunk {
					end := off + g.Chunk
					if end > total {
						end = total
					}
					b, err := Marshal(UpdateChunkMsg{Round: round, Offset: off, Total: total,
						N: mortalN, Tau: mortalTau, TrainLoss: 0.5,
						Last: end == total, Chunk: buf[:end-off]})
					if err != nil {
						return err
					}
					if err := mortalSide.Send(b); err != nil {
						return err
					}
				}
				return nil
			})
	}()

	fed := &Federation{Cfg: cfg, Spec: cfg.ResolveSpec(spec), Test: test, conns: conns, local: true}
	res, err := fed.serve(parties)
	wg.Wait()
	if err != nil {
		t.Fatalf("federation should survive a party death: %v", err)
	}
	if len(res.Curve) != cfg.Rounds {
		t.Fatalf("rounds: %d", len(res.Curve))
	}
	for _, m := range res.Curve[0].Dropped {
		if m == mortal {
			t.Fatal("round 0 should not drop the still-alive party")
		}
	}
	assertEvictedAt(t, res.Curve, mortal, 1)
}

// TestSilentHelloTimesOut connects a client that never sends its hello:
// admission must reject it after HelloTimeout instead of hanging the
// accept loop, and the federation completes once real parties connect.
func TestSilentHelloTimesOut(t *testing.T) {
	cfg, locals, test := smallFederation(t)
	cfg.Rounds = 2
	spec, _ := data.Model("adult")
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ln.HelloTimeout = 150 * time.Millisecond
	var mu sync.Mutex
	var rejections []error
	ln.OnReject = func(err error) {
		mu.Lock()
		rejections = append(rejections, err)
		mu.Unlock()
	}
	addr := ln.Addr()
	type serveResult struct {
		res *fl.Result
		err error
	}
	resCh := make(chan serveResult, 1)
	go func() {
		res, err := ln.AcceptAndRun(len(locals), cfg, spec, test)
		resCh <- serveResult{res, err}
	}()

	silent, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	// Give the accept loop time to pick up the silent conn first, so the
	// rejection is deterministic (loopback accepts are FIFO).
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	for i, ds := range locals {
		wg.Add(1)
		go func(i int, ds *data.Dataset) {
			defer wg.Done()
			if err := DialParty(addr, i, ds, spec, cfg, uint64(400+i), ""); err != nil {
				t.Errorf("party %d: %v", i, err)
			}
		}(i, ds)
	}
	sr := <-resCh
	wg.Wait()
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	if sr.res.FinalAccuracy < 0.55 {
		t.Fatalf("accuracy %v", sr.res.FinalAccuracy)
	}
	// Hellos are read concurrently, so admission no longer waits out the
	// silent conn's timeout — that head-of-line freedom is the point. The
	// rejection is still delivered before AcceptAndRun returns: the
	// mid-hello conn is expired the moment the federation fills.
	mu.Lock()
	defer mu.Unlock()
	if len(rejections) == 0 {
		t.Fatal("the silent connection was never rejected")
	}
}

// TestAdmitRejectsDuplicateAndRange drives the admission check directly:
// a second hello claiming an already-admitted ID, and IDs outside
// [0, NumParties), must each cost only their own connection.
func TestAdmitRejectsDuplicateAndRange(t *testing.T) {
	fed := &Federation{Cfg: fl.Config{LocalEpochs: 1, BatchSize: 32}}
	fed.initParties(2)
	sendHello := func(h HelloMsg) *CountingConn {
		serverSide, partySide := Pipe()
		b, err := Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := partySide.Send(b); err != nil {
			t.Fatal(err)
		}
		return NewCountingConn(serverSide)
	}
	if err := fed.admit(sendHello(HelloMsg{ID: 0, N: 10, LabelDist: []float64{1}}), 2); err != nil {
		t.Fatal(err)
	}
	if err := fed.admit(sendHello(HelloMsg{ID: 0, N: 10, LabelDist: []float64{1}}), 2); err == nil {
		t.Fatal("duplicate ID should be rejected")
	}
	if err := fed.admit(sendHello(HelloMsg{ID: 2, N: 10, LabelDist: []float64{1}}), 2); err == nil {
		t.Fatal("out-of-range ID should be rejected")
	}
	if err := fed.admit(sendHello(HelloMsg{ID: -1, N: 10, LabelDist: []float64{1}}), 2); err == nil {
		t.Fatal("negative ID should be rejected")
	}
	if err := fed.admit(sendHello(HelloMsg{ID: 1, N: 10, LabelDist: []float64{math.NaN(), math.Inf(1), -3}}), 2); err != nil {
		t.Fatal(err)
	}
	for _, v := range fed.dists[1] {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("admitted label distribution not sanitized: %v", fed.dists[1])
		}
	}
}

// TestEmptyPartyStratifiedNoNaN is the transport-level regression test
// for the empty-dataset weighting bug: a party with zero samples joins a
// stratified-sampling federation, its all-zero label distribution forms
// its own cluster (so it is sampled every round), and the run must
// complete with finite state — previously the weighting path could go
// NaN off the hello's N=0.
func TestEmptyPartyStratifiedNoNaN(t *testing.T) {
	train, test, err := data.Load("adult", data.Config{TrainN: 600, TestN: 200, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	_, locals, err := partition.Strategy{Kind: partition.Homogeneous}.Split(train, 3, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	empty := &data.Dataset{
		Name: "empty", FeatLen: locals[0].FeatLen,
		SampleShape: locals[0].SampleShape, NumClasses: locals[0].NumClasses,
	}
	locals = append(locals, empty)
	spec, _ := data.Model("adult")
	cfg := fl.Config{
		Algorithm: fl.FedNova, Rounds: 3, LocalEpochs: 1, BatchSize: 32,
		LR: 0.05, Seed: 5, SampleFraction: 0.5, Sampling: fl.SampleStratified,
		ChunkSize: 128,
	}
	res, err := RunLocal(cfg, spec, locals, test)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.FinalState {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("state[%d] = %v with an empty party in the federation", i, v)
		}
	}
	if res.FinalAccuracy < 0.55 {
		t.Fatalf("accuracy %v", res.FinalAccuracy)
	}
}

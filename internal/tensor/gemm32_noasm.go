//go:build !amd64

package tensor

// useFMA32 is always false without the amd64 microkernels; the pure-Go
// packed-tile kernels in matmul32.go handle everything.
var useFMA32 = false

// sgemm4x16s is never called when useFMA32 is false.
func sgemm4x16s(a0, a1, a2, a3 *float32, sa uintptr, b *float32, kb uintptr, d *float32, ldd uintptr) {
	panic("tensor: sgemm4x16s without assembly support")
}

// sgemm4x16st is never called when useFMA32 is false.
func sgemm4x16st(a0, a1, a2, a3 *float32, sa uintptr, b *float32, kb uintptr, d *float32, ldd uintptr) {
	panic("tensor: sgemm4x16st without assembly support")
}

// sgemm4x8s is never called when useFMA32 is false.
func sgemm4x8s(a0, a1, a2, a3 *float32, sa uintptr, b *float32, kb uintptr, d *float32, ldd uintptr) {
	panic("tensor: sgemm4x8s without assembly support")
}

package nn

import (
	"math"

	"github.com/niid-bench/niidbench/internal/rng"
	"github.com/niid-bench/niidbench/internal/tensor"
)

// initHeUniform fills a parameter tensor with He-uniform values drawn
// from r, whatever the tensor's dtype.
func initHeUniform(t *tensor.Tensor, fanIn int, r *rng.RNG) {
	bound := math.Sqrt(6.0 / float64(fanIn))
	if t.DType() == tensor.Float32 {
		w := t.Data32()
		for i := range w {
			w[i] = float32((2*r.Float64() - 1) * bound)
		}
		return
	}
	w := t.Data()
	for i := range w {
		w[i] = (2*r.Float64() - 1) * bound
	}
}

// Dense is a fully connected layer: y = xW + b with x of shape (batch, in).
type Dense struct {
	W, B *Param
	dt   tensor.DType
	cmp  tensor.Compute // kernel fan-out budget (zero = all cores)
	in   *tensor.Tensor // cached input for the backward pass
	out  *tensor.Tensor // forward scratch
	dw   *tensor.Tensor // backward scratch: weight gradient
	dx   *tensor.Tensor // backward scratch: input gradient
}

// SetCompute installs the kernel compute budget for the layer's matmuls.
func (d *Dense) SetCompute(c tensor.Compute) { d.cmp = c }

// NewDense creates a float64 dense layer with He-uniform initialized
// weights, the standard choice for ReLU networks.
func NewDense(in, out int, r *rng.RNG) *Dense {
	return NewDenseOf(tensor.Float64, in, out, r)
}

// NewDenseOf is NewDense with an explicit compute dtype for the
// parameters, gradients and layer scratch.
func NewDenseOf(dt tensor.DType, in, out int, r *rng.RNG) *Dense {
	d := &Dense{W: newParam(dt, "dense.W", in, out), B: newParam(dt, "dense.b", out), dt: dt}
	initHeUniform(d.W.Data, in, r)
	return d
}

// Forward computes xW + b. The returned tensor is layer-owned scratch,
// valid until the next Forward call.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.in = x
	d.out = tensor.EnsureOf(d.dt, d.out, x.Dim(0), d.W.Data.Dim(1))
	d.cmp.MatMulInto(d.out, x, d.W.Data)
	d.out.AddRowVector(d.B.Data)
	return d.out
}

// Backward accumulates dW, db and returns dx.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW += xᵀ g
	d.dw = tensor.EnsureOf(d.dt, d.dw, d.W.Data.Dim(0), d.W.Data.Dim(1))
	d.cmp.MatMulTransAInto(d.dw, d.in, grad)
	tensor.AddInto(d.W.Grad, d.W.Grad, d.dw)
	// db += column sums of g
	grad.ColSumsInto(d.B.Grad)
	// dx = g Wᵀ
	d.dx = tensor.EnsureOf(d.dt, d.dx, grad.Dim(0), d.W.Data.Dim(0))
	d.cmp.MatMulTransBInto(d.dx, grad, d.W.Data)
	return d.dx
}

// Params returns the weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU applies max(0, x) element-wise. It is dtype-agnostic: the scratch
// follows the input's dtype.
type ReLU struct {
	mask []bool
	out  *tensor.Tensor // forward scratch
	dx   *tensor.Tensor // backward scratch
}

// NewReLU creates a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

func reluForward[T tensor.Elem](xd, od []T, mask []bool) {
	od = od[:len(xd)]
	mask = mask[:len(xd)]
	for i, v := range xd {
		if v > 0 {
			mask[i] = true
			od[i] = v
		} else {
			mask[i] = false
			od[i] = 0
		}
	}
}

func reluBackward[T tensor.Elem](gd, od []T, mask []bool) {
	od = od[:len(gd)]
	mask = mask[:len(gd)]
	for i, g := range gd {
		if mask[i] {
			od[i] = g
		} else {
			od[i] = 0
		}
	}
}

// Forward zeroes negative entries and records which survived.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out = tensor.EnsureOf(x.DType(), l.out, x.Shape()...)
	if cap(l.mask) < x.Len() {
		l.mask = make([]bool, x.Len())
	}
	l.mask = l.mask[:x.Len()]
	if x.DType() == tensor.Float32 {
		reluForward(x.Data32(), l.out.Data32(), l.mask)
	} else {
		reluForward(x.Data(), l.out.Data(), l.mask)
	}
	return l.out
}

// Backward passes gradients through surviving entries only.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.dx = tensor.EnsureOf(grad.DType(), l.dx, grad.Shape()...)
	if grad.DType() == tensor.Float32 {
		reluBackward(grad.Data32(), l.dx.Data32(), l.mask)
	} else {
		reluBackward(grad.Data(), l.dx.Data(), l.mask)
	}
	return l.dx
}

// Params returns nil: ReLU has no parameters.
func (l *ReLU) Params() []*Param { return nil }

// Flatten reshapes (batch, ...) to (batch, features).
type Flatten struct {
	inShape []int
}

// NewFlatten creates a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the batch dimension. The reshape is in place:
// the upstream layer re-shapes its scratch on its next Forward anyway.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.inShape = append(l.inShape[:0], x.Shape()...)
	return x.ReshapeInPlace(x.Dim(0), x.Len()/x.Dim(0))
}

// Backward restores the original shape (in place, on the downstream
// layer's gradient scratch).
func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.ReshapeInPlace(l.inShape...)
}

// Params returns nil: Flatten has no parameters.
func (l *Flatten) Params() []*Param { return nil }

// Dropout randomly zeroes a fraction of activations during training and
// rescales the survivors (inverted dropout). At evaluation it is identity.
// Like ReLU it is dtype-agnostic.
type Dropout struct {
	Rate float64
	r    *rng.RNG
	mask []float64
	out  *tensor.Tensor // forward scratch
	dx   *tensor.Tensor // backward scratch
}

// NewDropout creates a dropout layer with the given drop probability.
func NewDropout(rate float64, r *rng.RNG) *Dropout {
	return &Dropout{Rate: rate, r: r}
}

func dropoutForward[T tensor.Elem](xd, od []T, mask []float64, rate, scale float64, r *rng.RNG) {
	od = od[:len(xd)]
	mask = mask[:len(xd)]
	for i, v := range xd {
		if r.Float64() < rate {
			mask[i] = 0
			od[i] = 0
		} else {
			mask[i] = scale
			od[i] = T(float64(v) * scale)
		}
	}
}

func dropoutBackward[T tensor.Elem](gd, od []T, mask []float64) {
	od = od[:len(gd)]
	mask = mask[:len(gd)]
	for i, g := range gd {
		od[i] = T(float64(g) * mask[i])
	}
}

// Forward applies the dropout mask in training mode.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.Rate <= 0 {
		l.mask = nil
		return x
	}
	l.out = tensor.EnsureOf(x.DType(), l.out, x.Shape()...)
	if cap(l.mask) < x.Len() {
		l.mask = make([]float64, x.Len())
	}
	l.mask = l.mask[:x.Len()]
	scale := 1 / (1 - l.Rate)
	if x.DType() == tensor.Float32 {
		dropoutForward(x.Data32(), l.out.Data32(), l.mask, l.Rate, scale, l.r)
	} else {
		dropoutForward(x.Data(), l.out.Data(), l.mask, l.Rate, scale, l.r)
	}
	return l.out
}

// Backward applies the same mask to the gradient.
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		return grad
	}
	l.dx = tensor.EnsureOf(grad.DType(), l.dx, grad.Shape()...)
	if grad.DType() == tensor.Float32 {
		dropoutBackward(grad.Data32(), l.dx.Data32(), l.mask)
	} else {
		dropoutBackward(grad.Data(), l.dx.Data(), l.mask)
	}
	return l.dx
}

// Params returns nil: Dropout has no parameters.
func (l *Dropout) Params() []*Param { return nil }

package fl

import (
	"math"

	"github.com/niid-bench/niidbench/internal/nn"
	"github.com/niid-bench/niidbench/internal/optim"
	"github.com/niid-bench/niidbench/internal/tensor"
)

// moonScratch holds MOON's reusable per-batch buffers: the contrastive
// gradient and the two per-sample cosine-gradient vectors.
type moonScratch struct {
	dz       *tensor.Tensor
	dsg, dsp []float64
}

// localTrainMoon implements MOON's model-contrastive local training (Li,
// He, Song — CVPR 2021, reference [40] of the paper). The local loss is
//
//	CE(w; x, y) + mu * L_con
//	L_con = -log( exp(sim(z, z_glob)/T) / (exp(sim(z, z_glob)/T) + exp(sim(z, z_prev)/T)) )
//
// where z is the representation (the input of the final classifier layer)
// of the current local model, z_glob that of the round's global model, and
// z_prev that of the party's previous local model. The contrastive term
// pulls the local representation toward the global model's and pushes it
// away from the stale local one, countering drift.
func (c *Client) localTrainMoon(global []float64, cfg Config, opt *optim.SGD, ws *tensor.Workspace) Update {
	if c.auxGlobal == nil {
		// Frozen replicas for representation extraction. Their weights are
		// overwritten every round, so the init RNG does not matter.
		c.auxGlobal = nn.Build(c.Spec, c.r.Split())
		c.auxPrev = nn.Build(c.Spec, c.r.Split())
		c.auxGlobal.SetCompute(c.cmp)
		c.auxPrev.SetCompute(c.cmp)
	}
	if c.prevState == nil {
		// First round: the "previous" model is the global one; the
		// contrastive gradient vanishes, which is MOON's cold start.
		c.prevState = append([]float64{}, global...)
	}
	c.auxGlobal.SetState(global)
	c.auxPrev.SetState(c.prevState)

	n := c.Data.Len()
	idx := c.indices(n)
	tau := 0
	var lastEpochLoss float64
	loss := nn.SoftmaxCrossEntropy{}
	head := c.model.Layers[len(c.model.Layers)-1]
	body := c.model.Layers[:len(c.model.Layers)-1]
	bs := cfg.BatchSize
	if bs > n {
		bs = n
	}
	xBuf := ws.GetOf(c.Spec.DType, bs, c.Data.FeatLen)

	for epoch := 0; epoch < cfg.LocalEpochs; epoch++ {
		c.r.Shuffle(idx)
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			var x *tensor.Tensor
			x, c.yBuf = c.Data.BatchInto(xBuf, c.yBuf, idx[start:end])
			xBuf = x
			shaped := c.Spec.ShapeBatch(x)

			c.model.ZeroGrads()
			// Forward through the body to the representation, then the head.
			h := shaped
			for _, l := range body {
				h = l.Forward(h, true)
			}
			z := h
			logits := head.Forward(z, true)
			var ceLoss float64
			ceLoss, c.lossGrad = loss.LossInto(c.lossGrad, logits, c.yBuf)

			// Representations under the frozen global and previous models
			// (eval mode so their BN statistics stay untouched).
			zg := forwardBody(c.auxGlobal, shaped)
			zp := forwardBody(c.auxPrev, shaped)

			conLoss, dz := contrastiveGradInto(&c.moon, z, zg, zp, cfg.MoonTemp)

			// Backward: head first, then inject the contrastive gradient at
			// the representation, then the body.
			gz := head.Backward(c.lossGrad)
			scale := cfg.MoonMu / float64(end-start)
			gz.AddScaled(scale, dz)
			g := gz
			for i := len(body) - 1; i >= 0; i-- {
				g = body[i].Backward(g)
			}
			if cfg.DPClip > 0 {
				dpSanitize(c.model, cfg.DPClip, cfg.DPNoise, end-start, c.r)
			}
			opt.Step(c.model)
			epochLoss += ceLoss + cfg.MoonMu*conLoss
			batches++
			tau++
		}
		if batches > 0 {
			lastEpochLoss = epochLoss / float64(batches)
		}
	}

	state := ws.Get(c.model.StateCount()).Data()
	c.model.GetState(state)
	delta := ws.Get(len(state)).Data()
	for i := range delta {
		delta[i] = global[i] - state[i]
	}
	c.prevState = append(c.prevState[:0], state...)
	up := Update{Delta: delta, Tau: tau, N: n, TrainLoss: lastEpochLoss, Kept: c.model.ParamCount()}
	if cfg.CompressTopK > 0 {
		up.Kept = compressTopK(delta, c.model.ParamCount(), cfg.CompressTopK)
	}
	return up
}

// forwardBody runs all but the final layer of m in eval mode.
func forwardBody(m *nn.Sequential, x *tensor.Tensor) *tensor.Tensor {
	h := x
	for _, l := range m.Layers[:len(m.Layers)-1] {
		h = l.Forward(h, false)
	}
	return h
}

// contrastiveGrad computes MOON's mean contrastive loss over the batch and
// the gradient of the *sum* of per-sample losses with respect to z (the
// caller scales by mu/batch). z, zg, zp are (batch, dim) tensors.
func contrastiveGrad(z, zg, zp *tensor.Tensor, temp float64) (float64, *tensor.Tensor) {
	var s moonScratch
	return contrastiveGradInto(&s, z, zg, zp, temp)
}

// contrastiveGradInto is contrastiveGrad with caller-held scratch; the
// returned gradient tensor is owned by s, matches z's dtype and is valid
// until the next call.
func contrastiveGradInto(s *moonScratch, z, zg, zp *tensor.Tensor, temp float64) (float64, *tensor.Tensor) {
	b, d := z.Dim(0), z.Dim(1)
	s.dz = tensor.EnsureOf(z.DType(), s.dz, b, d)
	if cap(s.dsg) < d {
		s.dsg = make([]float64, d)
		s.dsp = make([]float64, d)
	}
	dsg, dsp := s.dsg[:d], s.dsp[:d]
	var total float64
	if z.DType() == tensor.Float32 {
		total = contrastiveRows(z.Data32(), zg.Data32(), zp.Data32(), s.dz.Data32(), dsg, dsp, b, d, temp)
	} else {
		total = contrastiveRows(z.Data(), zg.Data(), zp.Data(), s.dz.Data(), dsg, dsp, b, d, temp)
	}
	return total / float64(b), s.dz
}

// contrastiveRows is the dtype-generic body of contrastiveGradInto; the
// similarity math runs in float64 and the gradient narrows on write.
func contrastiveRows[T tensor.Elem](zd, zgd, zpd, dzd []T, dsg, dsp []float64, b, d int, temp float64) float64 {
	var total float64
	for i := 0; i < b; i++ {
		zi := zd[i*d : (i+1)*d]
		gi := zgd[i*d : (i+1)*d]
		pi := zpd[i*d : (i+1)*d]
		out := dzd[i*d : (i+1)*d]

		sg := cosineWithGradOf(zi, gi, dsg)
		sp := cosineWithGradOf(zi, pi, dsp)
		// Two-way softmax with the global similarity as the positive.
		eg := math.Exp(sg / temp)
		ep := math.Exp(sp / temp)
		sigma := eg / (eg + ep)
		total += -math.Log(math.Max(sigma, 1e-12))
		cg := (sigma - 1) / temp // dL/dsg
		cp := (1 - sigma) / temp // dL/dsp
		for j := 0; j < d; j++ {
			out[j] = T(cg*dsg[j] + cp*dsp[j])
		}
	}
	return total
}

// cosineWithGrad returns cos(a, b) and d cos/d a. Degenerate (near-zero)
// norms yield zero similarity and gradient.
func cosineWithGrad(a, b []float64) (float64, []float64) {
	grad := make([]float64, len(a))
	return cosineWithGradInto(a, b, grad), grad
}

// cosineWithGradInto writes d cos/d a into grad (fully overwritten) and
// returns cos(a, b).
func cosineWithGradInto(a, b, grad []float64) float64 {
	return cosineWithGradOf(a, b, grad)
}

// cosineWithGradOf is the dtype-generic cosine-with-gradient: the
// accumulation and the gradient stay float64 whatever the input element
// type.
func cosineWithGradOf[T tensor.Elem](a, b []T, grad []float64) float64 {
	var dot, na, nb float64
	for j := range a {
		av, bv := float64(a[j]), float64(b[j])
		dot += av * bv
		na += av * av
		nb += bv * bv
	}
	na, nb = math.Sqrt(na), math.Sqrt(nb)
	if na < 1e-12 || nb < 1e-12 {
		for j := range grad {
			grad[j] = 0
		}
		return 0
	}
	cos := dot / (na * nb)
	for j := range a {
		grad[j] = float64(b[j])/(na*nb) - cos*float64(a[j])/(na*na)
	}
	return cos
}

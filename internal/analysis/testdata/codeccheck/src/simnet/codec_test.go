package simnet

import "testing"

// allFixtures returns one populated literal per covered message type;
// evidence gathering must attribute these to the tests that call it.
func allFixtures() []any {
	return []any{AMsg{X: 42}, BMsg{Y: 99}}
}

func TestRoundTrip(t *testing.T) {
	for _, m := range allFixtures() {
		b, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Unmarshal(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTruncationSweep(t *testing.T) {
	for _, m := range allFixtures() {
		b, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := Unmarshal(b[:cut]); err == nil {
				t.Fatalf("decoded truncation at %d", cut)
			}
		}
	}
}

func FuzzDecode(f *testing.F) {
	for _, m := range allFixtures() {
		b, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Unmarshal(data)
	})
}

package experiments

import (
	"fmt"
	"math"

	"github.com/niid-bench/niidbench/internal/data"
	"github.com/niid-bench/niidbench/internal/partition"
	"github.com/niid-bench/niidbench/internal/report"
	"github.com/niid-bench/niidbench/internal/rng"
)

func init() {
	register(Experiment{ID: "fig4", Title: "Distribution-based label imbalance heat map (Figure 4)", Run: runFig4})
	register(Experiment{ID: "fig5", Title: "Noise-based feature imbalance example (Figure 5)", Run: runFig5})
	register(Experiment{ID: "fig6", Title: "FCUBE partition visualization (Figure 6)", Run: runFig6})
	register(Experiment{ID: "fig7", Title: "Decision tree for algorithm selection (Figure 7)", Run: runFig7})
}

// runFig4 prints the party-by-class sample-count matrix of a Dir(0.5)
// label-imbalance partition of MNIST, the text analogue of Figure 4.
func runFig4(h *Harness) error {
	train, _, err := h.Dataset("mnist")
	if err != nil {
		return err
	}
	strat := partition.Strategy{Kind: partition.LabelDirichlet, Beta: 0.5}
	part, err := strat.Assign(train, h.p.parties, rng.New(h.opt.Seed))
	if err != nil {
		return err
	}
	st := partition.ComputeStats(part, train.Y, train.NumClasses)
	fmt.Fprintf(h.Out, "MNIST, p_k~Dir(0.5), %d parties\n\n", h.p.parties)
	fmt.Fprint(h.Out, st.Heatmap())
	fmt.Fprintf(h.Out, "\nlabel imbalance (mean JS divergence to global): %.4f\n", st.LabelImbalance)
	return nil
}

// runFig5 quantifies the noise-based feature imbalance example: the
// per-party feature deviation from the clean data for increasing noise
// levels, the measurement behind Figure 5's visual.
func runFig5(h *Harness) error {
	train, _, err := h.Dataset("fmnist")
	if err != nil {
		return err
	}
	parties := 4
	strat := partition.Strategy{Kind: partition.FeatureNoise, NoiseSigma: 0.1}
	part, locals, err := strat.Split(train, parties, rng.New(h.opt.Seed))
	if err != nil {
		return err
	}
	tb := report.NewTable("FMNIST with x~Gau(0.1): per-party feature noise",
		"party", "noise level sigma*i/N", "measured deviation (std)")
	for pi, ds := range locals {
		var sq float64
		count := 0
		for j, origIdx := range part[pi] {
			orig := train.Sample(origIdx)
			noisy := ds.Sample(j)
			for k := range orig {
				d := noisy[k] - orig[k]
				sq += d * d
				count++
			}
		}
		measured := math.Sqrt(sq / float64(count))
		tb.AddRow(fmt.Sprintf("P%d", pi), fmt.Sprintf("%.4f", 0.1*float64(pi+1)/float64(parties)), fmt.Sprintf("%.4f", measured))
	}
	tb.Render(h.Out)
	return nil
}

// runFig6 reports the FCUBE allocation: which octants each party holds and
// its label balance — the content of Figure 6 in table form.
func runFig6(h *Harness) error {
	train, _, err := h.Dataset("fcube")
	if err != nil {
		return err
	}
	part := partition.FCube(train, 4)
	tb := report.NewTable("FCUBE: symmetric-octant allocation over 4 parties",
		"party", "octants", "#samples", "label0", "label1")
	for pi, idx := range part {
		seen := map[int]bool{}
		counts := [2]int{}
		for _, i := range idx {
			seen[data.FCubeOctant(train.Sample(i))] = true
			counts[train.Y[i]]++
		}
		octs := ""
		for o := 0; o < 8; o++ {
			if seen[o] {
				if octs != "" {
					octs += ","
				}
				octs += fmt.Sprint(o)
			}
		}
		tb.AddRow(fmt.Sprintf("P%d", pi), octs, fmt.Sprint(len(idx)),
			fmt.Sprint(counts[0]), fmt.Sprint(counts[1]))
	}
	tb.Render(h.Out)
	fmt.Fprintln(h.Out, "\nfeature distributions differ per party (different cube regions) while labels stay balanced")
	return nil
}

// runFig7 prints the paper's decision tree for choosing an FL algorithm
// from the observed non-IID setting.
func runFig7(h *Harness) error {
	fmt.Fprint(h.Out, `Non-IID data setting
├── Label distribution skew
│   ├── Distribution-based label imbalance
│   │   ├── Image datasets   -> FedAvg / FedProx
│   │   └── Tabular datasets -> FedProx
│   └── Quantity-based label imbalance -> SCAFFOLD (images, mild skew) / FedProx (#C=1)
├── Feature distribution skew -> SCAFFOLD
└── Quantity skew             -> FedProx
`)
	return nil
}

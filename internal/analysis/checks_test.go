package analysis

import "testing"

// Each fixture tree under testdata/<check>/src locks the analyzer's
// positive findings, its clean shapes, and at least one //lint:allow
// suppression case. runFixture matches strictly in both directions, so
// flipping either a want comment or the analyzer's behaviour fails.

func TestCodecCheckFixture(t *testing.T) {
	runFixture(t, CodecCheck, "codeccheck", "simnet")
}

func TestPoolCheckFixture(t *testing.T) {
	runFixture(t, PoolCheck, "poolcheck", "consumer")
}

func TestComputeCheckFixture(t *testing.T) {
	runFixture(t, ComputeCheck, "computecheck", "engine")
}

func TestDeterCheckFixture(t *testing.T) {
	runFixture(t, DeterCheck, "detercheck", "fl")
}

func TestLeakCheckFixture(t *testing.T) {
	runFixture(t, LeakCheck, "leakcheck", "simnet")
}

// TestSuppressionRequiresReason pins the policy that a bare
// //lint:allow with no reason does not suppress: the diagnostic
// survives, annotated.
func TestSuppressionRequiresReason(t *testing.T) {
	d := Diagnostic{Check: "detercheck"}
	d.Pos.Line = 10
	if _, ok := matchSuppression([]suppression{{line: 9, check: "detercheck"}}, d); !ok {
		t.Fatal("line-above suppression did not match")
	}
	if _, ok := matchSuppression([]suppression{{line: 10, check: "detercheck"}}, d); !ok {
		t.Fatal("same-line suppression did not match")
	}
	if _, ok := matchSuppression([]suppression{{line: 8, check: "detercheck"}}, d); ok {
		t.Fatal("distant suppression matched")
	}
	if _, ok := matchSuppression([]suppression{{line: 10, check: "poolcheck"}}, d); ok {
		t.Fatal("wrong-check suppression matched")
	}
}

// Command niidbench reproduces the tables and figures of "Federated
// Learning on Non-IID Data Silos: An Experimental Study" (ICDE 2022) and
// exposes the benchmark's pieces for ad-hoc runs.
//
// Usage:
//
//	niidbench list                          # list reproducible artifacts
//	niidbench table3 [-scale quick] [...]   # regenerate a table/figure
//	niidbench all [-scale quick]            # regenerate everything
//	niidbench run -dataset cifar10 -partition label-dirichlet -beta 0.5 \
//	    -algo scaffold -parties 10 -rounds 50    # one ad-hoc federated run
//	niidbench partition-stats -dataset mnist -partition label-quantity -k 2
//	niidbench datasets                      # dataset inventory (Table II)
//
// Scales: smoke (seconds), quick (default, minutes), paper (the paper's
// settings; hours of CPU).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/niid-bench/niidbench/internal/data"
	"github.com/niid-bench/niidbench/internal/experiments"
	"github.com/niid-bench/niidbench/internal/fl"
	"github.com/niid-bench/niidbench/internal/partition"
	"github.com/niid-bench/niidbench/internal/report"
	"github.com/niid-bench/niidbench/internal/rng"
	"github.com/niid-bench/niidbench/internal/simnet"
	"github.com/niid-bench/niidbench/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "niidbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "help", "-h", "--help":
		usage()
		return nil
	case "list":
		return cmdList()
	case "datasets":
		return experiments.Run("table2", experiments.Options{Scale: experiments.Quick, Out: os.Stdout})
	case "all":
		return cmdAll(rest)
	case "run":
		return cmdRun(rest)
	case "partition-stats":
		return cmdPartitionStats(rest)
	default:
		if _, err := experiments.Get(cmd); err == nil {
			return cmdExperiment(cmd, rest)
		}
		return fmt.Errorf("unknown command %q (try `niidbench list`)", cmd)
	}
}

func usage() {
	fmt.Println(`niidbench — NIID-Bench reproduction (ICDE 2022)

commands:
  list                 list reproducible paper artifacts
  datasets             dataset inventory (Table II)
  <artifact-id>        regenerate one artifact, e.g. table3, fig8
  all                  regenerate every artifact
  run                  one ad-hoc federated run
  partition-stats      show a partition's class/size distribution

common flags (artifact commands):
  -scale smoke|quick|paper   experiment scale (default quick)
  -seed N                    master seed
  -trials N                  trials per cell (default: scale's)
  -datasets a,b,c            restrict to these datasets
  -conc N                    concurrent grid cells (default 1)`)
}

func cmdList() error {
	tb := report.NewTable("Reproducible artifacts", "id", "title")
	for _, e := range experiments.All() {
		tb.AddRow(e.ID, e.Title)
	}
	tb.Render(os.Stdout)
	return nil
}

// expFlags parses the shared experiment flags.
func expFlags(name string, args []string) (experiments.Options, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	scale := fs.String("scale", "quick", "experiment scale: smoke, quick, paper")
	seed := fs.Uint64("seed", 1, "master seed")
	trials := fs.Int("trials", 0, "trials per setting (0 = scale default)")
	datasets := fs.String("datasets", "", "comma-separated dataset filter")
	conc := fs.Int("conc", 1, "concurrent grid cells (trials) per experiment")
	if err := fs.Parse(args); err != nil {
		return experiments.Options{}, err
	}
	opt := experiments.Options{
		Scale:       experiments.Scale(*scale),
		Seed:        *seed,
		Trials:      *trials,
		Out:         os.Stdout,
		Concurrency: *conc,
	}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}
	switch opt.Scale {
	case experiments.Smoke, experiments.Quick, experiments.Paper:
	default:
		return opt, fmt.Errorf("unknown scale %q", *scale)
	}
	return opt, nil
}

func cmdExperiment(id string, args []string) error {
	opt, err := expFlags(id, args)
	if err != nil {
		return err
	}
	return experiments.Run(id, opt)
}

func cmdAll(args []string) error {
	opt, err := expFlags("all", args)
	if err != nil {
		return err
	}
	for _, e := range experiments.All() {
		if err := experiments.Run(e.ID, opt); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println()
	}
	return nil
}

// parseStrategy builds a partition.Strategy from flag values.
func parseStrategy(kind string, k int, beta, sigma float64) (partition.Strategy, error) {
	s := partition.Strategy{Kind: partition.Kind(kind), K: k, Beta: beta}
	if s.Kind == partition.FeatureNoise {
		s.NoiseSigma = sigma
	}
	switch s.Kind {
	case partition.Homogeneous, partition.LabelQuantity, partition.LabelDirichlet,
		partition.FeatureNoise, partition.FeatureSynthetic, partition.FeatureRealWorld,
		partition.Quantity:
		return s, nil
	}
	return s, fmt.Errorf("unknown partition kind %q (iid, label-quantity, label-dirichlet, feature-noise, feature-synthetic, feature-realworld, quantity)", kind)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	dataset := fs.String("dataset", "cifar10", "dataset family")
	partKind := fs.String("partition", "iid", "partition kind")
	k := fs.Int("k", 2, "classes per party for label-quantity")
	beta := fs.Float64("beta", 0.5, "Dirichlet concentration")
	sigma := fs.Float64("sigma", 0.1, "noise level for feature-noise (also mixes with other kinds when >0 and -mix is set)")
	mix := fs.Bool("mix", false, "add feature noise on top of the chosen partition (mixed skew)")
	algo := fs.String("algo", "fedavg", "fedavg, fedprox, scaffold, fednova, feddyn, moon")
	parties := fs.Int("parties", 10, "number of parties")
	rounds := fs.Int("rounds", 10, "communication rounds")
	epochs := fs.Int("epochs", 3, "local epochs")
	batch := fs.Int("batch", 32, "batch size")
	lr := fs.Float64("lr", 0.01, "learning rate")
	mu := fs.Float64("mu", 0.01, "FedProx mu")
	fraction := fs.Float64("fraction", 1, "party sample fraction")
	trainN := fs.Int("train", 0, "training samples (0 = family default)")
	testN := fs.Int("test", 0, "test samples (0 = family default)")
	seed := fs.Uint64("seed", 1, "seed")
	useTCP := fs.Bool("tcp", false, "run the federation over local TCP sockets instead of in-process")
	alpha := fs.Float64("alpha", 0.01, "FedDyn alpha")
	moonMu := fs.Float64("moon-mu", 1, "MOON contrastive weight")
	serverOpt := fs.String("server-opt", "sgd", "server optimizer: sgd, momentum, adam")
	sampling := fs.String("sampling", "random", "party sampling under partial participation: random, stratified")
	dpClip := fs.Float64("dp-clip", 0, "DP gradient clipping bound (0 = off)")
	dpNoise := fs.Float64("dp-noise", 0, "DP noise multiplier (std = noise*clip/batch)")
	topK := fs.Float64("compress", 0, "top-k update compression: fraction of delta entries kept (0 = off)")
	saveModel := fs.String("save-model", "", "write the final global model state to this file")
	loadModel := fs.String("load-model", "", "initialize the global model from this checkpoint")
	dtypeName := fs.String("dtype", "float64", "local-training compute precision: float64 or float32 (SIMD fast path)")
	chunk := fs.Int("chunk", 65536, "stream broadcasts and updates in chunks of this many float64 elements (0 = whole messages); bit-identical either way")
	chunkWindow := fs.Int("chunk-window", 4, "decoded chunk frames the server buffers per connection before backpressure")
	asyncBuffer := fs.Int("async-buffer", 0, "buffered-async aggregation: fold updates as they arrive and publish a new global every M folds (0 = synchronous rounds)")
	staleness := fs.Float64("staleness", 0, "async staleness-discount exponent a in 1/(1+tau)^a (0 = default 0.5)")
	foldAhead := fs.Int("fold-ahead", 0, "sync chunked mode: parties past the fold cursor allowed to stage decoded updates (0 = default 4, 1 = serial drain)")
	codec := fs.String("codec", "", "wire chunk codec over transports: f64 (raw, default), f32, int8, int4; negotiated per party at the hello")
	fairShare := fs.Int("fair-share", 0, "async mode: max folds one party may contribute per buffer window (0 = default 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dtype, ok := tensor.ParseDType(*dtypeName)
	if !ok {
		return fmt.Errorf("unknown -dtype %q (float64, float32)", *dtypeName)
	}

	strat, err := parseStrategy(*partKind, *k, *beta, *sigma)
	if err != nil {
		return err
	}
	if *mix && strat.Kind != partition.FeatureNoise {
		strat.NoiseSigma = *sigma
	}
	train, test, err := data.Load(*dataset, data.Config{TrainN: *trainN, TestN: *testN, Seed: *seed})
	if err != nil {
		return err
	}
	spec, err := data.Model(*dataset)
	if err != nil {
		return err
	}
	_, locals, err := strat.Split(train, *parties, rng.New(*seed+17))
	if err != nil {
		return err
	}
	cfg := fl.Config{
		Algorithm:         fl.Algorithm(*algo),
		Rounds:            *rounds,
		LocalEpochs:       *epochs,
		BatchSize:         *batch,
		LR:                *lr,
		Momentum:          0.9,
		Mu:                *mu,
		Alpha:             *alpha,
		MoonMu:            *moonMu,
		SampleFraction:    *fraction,
		Seed:              *seed,
		ServerOptimizer:   fl.ServerOpt(*serverOpt),
		Sampling:          fl.PartySampling(*sampling),
		DPClip:            *dpClip,
		DPNoise:           *dpNoise,
		CompressTopK:      *topK,
		DType:             dtype,
		ChunkSize:         *chunk,
		ChunkWindow:       *chunkWindow,
		AsyncBuffer:       *asyncBuffer,
		StalenessExponent: *staleness,
		FoldAhead:         *foldAhead,
		Codec:             fl.Codec(*codec),
		AsyncFairShare:    *fairShare,
	}
	var res *fl.Result
	if *useTCP {
		if *loadModel != "" {
			return fmt.Errorf("-load-model is not supported with -tcp")
		}
		res, err = runOverTCP(cfg, spec, locals, test)
	} else if *asyncBuffer > 0 {
		// Buffered-async aggregation is a transport-level protocol; the
		// in-process lockstep Simulation has no notion of it, so run the
		// federation over in-memory pipes instead.
		if *loadModel != "" {
			return fmt.Errorf("-load-model is not supported with -async-buffer")
		}
		res, err = simnet.RunLocal(cfg, spec, locals, test)
	} else {
		var sim *fl.Simulation
		sim, err = fl.NewSimulation(cfg, spec, locals, test)
		if err != nil {
			return err
		}
		if *loadModel != "" {
			state, err := fl.LoadStateFile(*loadModel)
			if err != nil {
				return err
			}
			if err := sim.SetInitialState(state); err != nil {
				return err
			}
			fmt.Printf("resumed from %s\n", *loadModel)
		}
		res, err = sim.Run()
	}
	if err != nil {
		return err
	}
	printResult(*dataset, strat, res)
	if *saveModel != "" {
		if err := fl.SaveStateFile(*saveModel, res.FinalState); err != nil {
			return err
		}
		fmt.Printf("model state saved to %s\n", *saveModel)
	}
	return nil
}

func printResult(dataset string, strat partition.Strategy, res *fl.Result) {
	fmt.Printf("dataset=%s partition=%s algorithm=%s\n", dataset, strat, res.Config.Algorithm)
	fmt.Printf("parameters=%d state=%d\n", res.ParamCount, res.StateCount)
	var accs []float64
	for _, m := range res.Curve {
		accs = append(accs, m.TestAccuracy)
	}
	fmt.Println(report.Curve("test accuracy", accs))
	fmt.Printf("final accuracy: %s (best %s)\n", report.Percent(res.FinalAccuracy), report.Percent(res.BestAccuracy))
	fmt.Printf("communication: %s/round, %s total\n", report.Bytes(res.CommBytesPerRound), report.Bytes(float64(res.TotalCommBytes)))
	fmt.Printf("computation: %v total\n", res.ComputeTime)
	if res.Async != nil {
		fmt.Printf("async: %d folds over %d generations, staleness mean %.2f max %d\n",
			res.Async.Folds, len(res.Curve), res.Async.MeanStaleness, res.Async.MaxStaleness)
	}
}

func cmdPartitionStats(args []string) error {
	fs := flag.NewFlagSet("partition-stats", flag.ContinueOnError)
	dataset := fs.String("dataset", "mnist", "dataset family")
	partKind := fs.String("partition", "label-dirichlet", "partition kind")
	k := fs.Int("k", 2, "classes per party for label-quantity")
	beta := fs.Float64("beta", 0.5, "Dirichlet concentration")
	sigma := fs.Float64("sigma", 0.1, "noise level")
	parties := fs.Int("parties", 10, "number of parties")
	trainN := fs.Int("train", 0, "training samples")
	seed := fs.Uint64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat, err := parseStrategy(*partKind, *k, *beta, *sigma)
	if err != nil {
		return err
	}
	train, _, err := data.Load(*dataset, data.Config{TrainN: *trainN, Seed: *seed})
	if err != nil {
		return err
	}
	if strat.Kind == partition.FeatureSynthetic {
		*parties = 4
	}
	part, err := strat.Assign(train, *parties, rng.New(*seed+17))
	if err != nil {
		return err
	}
	st := partition.ComputeStats(part, train.Y, train.NumClasses)
	fmt.Printf("%s, %s, %d parties\n\n", *dataset, strat, *parties)
	fmt.Print(st.Heatmap())
	fmt.Printf("\nlabel imbalance (mean JS divergence): %.4f\n", st.LabelImbalance)
	fmt.Printf("quantity imbalance (CV of sizes):     %.4f\n", st.QuantityImbalance)
	return nil
}

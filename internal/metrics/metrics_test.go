package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(a-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %v", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestConfusionMatrix(t *testing.T) {
	cm := ConfusionMatrix([]int{0, 1, 1, 0}, []int{0, 1, 0, 0}, 2)
	if cm[0][0] != 2 || cm[0][1] != 1 || cm[1][1] != 1 || cm[1][0] != 0 {
		t.Fatalf("confusion: %v", cm)
	}
}

func TestConfusionMatrixTotalsProperty(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		classes := 4
		pred := make([]int, len(raw))
		labels := make([]int, len(raw))
		for i, v := range raw {
			pred[i] = int(v) % classes
			labels[i] = int(v>>4) % classes
		}
		cm := ConfusionMatrix(pred, labels, classes)
		total := 0
		for _, row := range cm {
			for _, n := range row {
				total += n
			}
		}
		return total == len(raw)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerClassAccuracy(t *testing.T) {
	pred := []int{0, 0, 1, 1}
	labels := []int{0, 1, 1, 1}
	pc := PerClassAccuracy(pred, labels, 3)
	if pc[0] != 1 {
		t.Fatalf("class 0: %v", pc[0])
	}
	if math.Abs(pc[1]-2.0/3) > 1e-12 {
		t.Fatalf("class 1: %v", pc[1])
	}
	if !math.IsNaN(pc[2]) {
		t.Fatalf("absent class should be NaN: %v", pc[2])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 0.7, 0.6})
	if math.Abs(s.Mean-0.6) > 1e-12 {
		t.Fatalf("mean %v", s.Mean)
	}
	want := math.Sqrt(((0.1 * 0.1) + (0.1 * 0.1)) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v want %v", s.Std, want)
	}
	if s.N != 3 {
		t.Fatalf("n %d", s.N)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Mean != 0 || s.Std != 0 || s.N != 0 {
		t.Fatalf("empty: %+v", s)
	}
	if s := Summarize([]float64{0.9}); s.Mean != 0.9 || s.Std != 0 {
		t.Fatalf("single: %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Mean: 0.970, Std: 0.004}
	if got := s.String(); got != "97.0%±0.4%" {
		t.Fatalf("format: %q", got)
	}
}

func TestSummarizeMatchesAccuracyProperty(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v) / 255
		}
		s := Summarize(vals)
		// Mean within [min, max]; std non-negative.
		mn, mx := vals[0], vals[0]
		for _, v := range vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return s.Mean >= mn-1e-12 && s.Mean <= mx+1e-12 && s.Std >= 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

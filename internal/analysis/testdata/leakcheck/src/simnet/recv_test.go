package simnet

import "testing"

// Test files are exempt: test goroutines are bounded by the test
// process and the goroutine-leak registry.
func TestGoroutineInTestAllowed(t *testing.T) {
	done := make(chan struct{})
	go func() {
		for {
			<-done
			return
		}
	}()
	close(done)
}

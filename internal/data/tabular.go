package data

import (
	"math"

	"github.com/niid-bench/niidbench/internal/rng"
)

// tabularFamily parameterizes a synthetic tabular binary-classification
// dataset built from a random "teacher": features are drawn from a
// family-specific distribution and labelled by a noisy teacher function.
// The three families mirror the character of the paper's tabular sets:
// adult (binary-ish features, imbalanced classes), rcv1 (high-dimensional
// sparse) and covtype (dense mid-dimensional, nonlinear decision surface).
type tabularFamily struct {
	name     string
	features int
	// density is the probability a feature is non-zero (sparse families).
	density float64
	// binary makes non-zero features take value 1 (one-hot-ish encodings).
	binary bool
	// posRate is the target fraction of positive labels.
	posRate float64
	// labelNoise flips this fraction of labels, bounding attainable accuracy.
	labelNoise float64
	// nonlinear mixes in pairwise feature interactions in the teacher.
	nonlinear float64
}

var (
	adultFamily = tabularFamily{
		name: "adult", features: 123, density: 0.12, binary: true,
		posRate: 0.24, labelNoise: 0.10, nonlinear: 0,
	}
	rcv1Family = tabularFamily{
		name: "rcv1", features: 600, density: 0.04, binary: false,
		posRate: 0.50, labelNoise: 0.02, nonlinear: 0,
	}
	covtypeFamily = tabularFamily{
		name: "covtype", features: 54, density: 1.0, binary: false,
		posRate: 0.49, labelNoise: 0.08, nonlinear: 0.8,
	}
)

// generate builds train and test splits that share one teacher.
func (f tabularFamily) generate(trainN, testN int, seed uint64) (train, test *Dataset) {
	r := rng.New(seed)
	// Teacher weights. Sparse families get a dense teacher so that every
	// active feature is informative.
	w := make([]float64, f.features)
	for i := range w {
		w[i] = r.Normal()
	}
	// Interaction pairs for the nonlinear component.
	type pair struct{ a, b int }
	var pairs []pair
	var pairW []float64
	if f.nonlinear > 0 {
		for k := 0; k < f.features; k++ {
			pairs = append(pairs, pair{r.Intn(f.features), r.Intn(f.features)})
			pairW = append(pairW, r.Normal())
		}
	}

	score := func(row []float64) float64 {
		var s float64
		for i, v := range row {
			if v != 0 {
				s += w[i] * v
			}
		}
		if f.nonlinear > 0 {
			var ns float64
			for k, p := range pairs {
				ns += pairW[k] * row[p.a] * row[p.b]
			}
			s = (1-f.nonlinear)*s + f.nonlinear*ns
		}
		return s
	}

	// Calibrate the decision threshold on a pilot sample so the positive
	// rate matches posRate.
	pilotR := r.Split()
	pilot := make([]float64, 2000)
	rowBuf := make([]float64, f.features)
	for i := range pilot {
		f.sampleRow(rowBuf, pilotR)
		pilot[i] = score(rowBuf)
	}
	threshold := quantile(pilot, 1-f.posRate)

	build := func(n int, sr *rng.RNG) *Dataset {
		d := &Dataset{
			Name:        f.name,
			X:           make([]float64, n*f.features),
			Y:           make([]int, n),
			FeatLen:     f.features,
			SampleShape: []int{f.features},
			NumClasses:  2,
		}
		for i := 0; i < n; i++ {
			row := d.X[i*f.features : (i+1)*f.features]
			f.sampleRow(row, sr)
			y := 0
			if score(row) > threshold {
				y = 1
			}
			if sr.Float64() < f.labelNoise {
				y = 1 - y
			}
			d.Y[i] = y
		}
		return d
	}
	train = build(trainN, r.Split())
	test = build(testN, r.Split())
	Standardize(train, test)
	return train, test
}

func (f tabularFamily) sampleRow(row []float64, r *rng.RNG) {
	for i := range row {
		if f.density < 1 && r.Float64() >= f.density {
			row[i] = 0
			continue
		}
		if f.binary {
			row[i] = 1
		} else {
			row[i] = r.Normal()
		}
	}
}

// quantile returns the q-quantile (0..1) of values, modifying a copy.
func quantile(values []float64, q float64) float64 {
	v := append([]float64{}, values...)
	// insertion-free selection via simple sort (n is small here)
	sortFloats(v)
	idx := int(q * float64(len(v)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(v) {
		idx = len(v) - 1
	}
	return v[idx]
}

func sortFloats(v []float64) {
	// Heapsort: avoids importing sort for a single call site and is
	// deterministic.
	n := len(v)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(v, i, n)
	}
	for i := n - 1; i > 0; i-- {
		v[0], v[i] = v[i], v[0]
		siftDown(v, 0, i)
	}
}

func siftDown(v []float64, lo, hi int) {
	root := lo
	for {
		child := 2*root + 1
		if child >= hi {
			return
		}
		if child+1 < hi && v[child] < v[child+1] {
			child++
		}
		if v[root] >= v[child] {
			return
		}
		v[root], v[child] = v[child], v[root]
		root = child
	}
}

// FCUBE is generated exactly as the paper describes: points uniform in the
// cube [-1,1]^3, labelled by the plane x1 = 0 (label 0 above, 1 below in
// our convention: label = 1 if x1 < 0). The cube splits into 8 octants by
// the coordinate planes; each of the 4 parties receives the two octants
// symmetric about the origin, giving feature skew with balanced labels.
func generateFCube(trainN, testN int, seed uint64) (train, test *Dataset) {
	r := rng.New(seed)
	build := func(n int, sr *rng.RNG) *Dataset {
		d := &Dataset{
			Name:        "fcube",
			X:           make([]float64, n*3),
			Y:           make([]int, n),
			FeatLen:     3,
			SampleShape: []int{3},
			NumClasses:  2,
		}
		for i := 0; i < n; i++ {
			row := d.X[i*3 : (i+1)*3]
			for j := range row {
				row[j] = 2*sr.Float64() - 1
			}
			if row[0] < 0 {
				d.Y[i] = 1
			}
		}
		return d
	}
	train = build(trainN, r.Split())
	test = build(testN, r.Split())
	// No standardization: the octant geometry is the partition key.
	return train, test
}

// FCubeOctant returns the octant index (0..7) of an FCUBE sample, using
// the sign bits of its three coordinates.
func FCubeOctant(row []float64) int {
	o := 0
	for j := 0; j < 3; j++ {
		if row[j] >= 0 {
			o |= 1 << j
		}
	}
	return o
}

// logistic is kept for teachers that need a probabilistic label flip in
// future extensions.
func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

#!/usr/bin/env bash
# Repo lint gate: go vet plus the niidlint analysis suite
# (codeccheck, poolcheck, computecheck, detercheck, leakcheck).
# CI runs this on every push; run it locally before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go run ./cmd/niidlint ./...

package fl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// checkpointMagic identifies a NIID-Bench model state file.
var checkpointMagic = [8]byte{'N', 'I', 'I', 'D', 'B', 'v', '0', '1'}

// SaveState writes a model state vector to w with a small self-describing
// header, so global models can be checkpointed between rounds or shipped
// to other processes.
func SaveState(w io.Writer, state []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(state)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range state {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadState reads a model state vector written by SaveState.
func LoadState(r io.Reader) ([]float64, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("fl: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("fl: not a NIID-Bench checkpoint (magic %q)", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("fl: reading checkpoint length: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxState = 1 << 28 // 256M scalars is far beyond any model here
	if n > maxState {
		return nil, fmt.Errorf("fl: checkpoint declares %d values, refusing", n)
	}
	state := make([]float64, n)
	var buf [8]byte
	for i := range state {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("fl: truncated checkpoint at value %d: %w", i, err)
		}
		state[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return state, nil
}

// SaveStateFile checkpoints a state vector to path.
func SaveStateFile(path string, state []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveState(f, state); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadStateFile reads a checkpoint from path.
func LoadStateFile(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadState(f)
}

// SetInitialState overrides the server's global state before training
// starts (resuming from a checkpoint). The length must match.
func (s *Simulation) SetInitialState(state []float64) error {
	if len(state) != len(s.server.state) {
		return fmt.Errorf("fl: checkpoint has %d values, model needs %d", len(state), len(s.server.state))
	}
	copy(s.server.state, state)
	return nil
}

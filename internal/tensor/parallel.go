package tensor

import (
	"runtime"
	"sync/atomic"
)

// legacyParallelism backs the deprecated SetKernelParallelism knob. It is
// consulted only by the package-level kernel wrappers (MatMulInto and
// friends called as free functions); kernels invoked through an explicit
// Compute never read it, so the training hot path — where every model
// carries its own Compute — has no process-global mutable parallelism
// state left.
var legacyParallelism atomic.Int32

// SetKernelParallelism bounds how many goroutines the package-level kernel
// wrappers may fan out across; 0 restores the default (GOMAXPROCS at call
// time).
//
// Deprecated: the cap is a single process-wide knob, so concurrent
// consumers in one process overwrite each other's setting. Thread an
// explicit Compute budget through the kernel methods instead
// (Compute{Workers: n}.MatMulInto(...)); this shim remains for callers of
// the free functions only.
func SetKernelParallelism(n int) {
	if n < 0 {
		n = 0
	}
	legacyParallelism.Store(int32(n))
}

// KernelParallelism returns the current deprecated global cap
// (0 = GOMAXPROCS).
//
// Deprecated: see SetKernelParallelism.
func KernelParallelism() int { return int(legacyParallelism.Load()) }

// CapKernelsPerWorker caps the deprecated global knob at GOMAXPROCS/n
// (minimum 1) and returns a func restoring the previous cap.
//
// Deprecated: use Compute.Split to derive per-worker budgets instead; a
// save/restore pair on a process-wide knob interleaves badly with any
// other concurrent consumer.
func CapKernelsPerWorker(n int) (restore func()) {
	prev := KernelParallelism()
	per := runtime.GOMAXPROCS(0) / n
	if per < 1 {
		per = 1
	}
	SetKernelParallelism(per)
	return func() { SetKernelParallelism(prev) }
}

// legacyCompute is the budget the package-level kernel wrappers run under:
// the deprecated global knob, or all cores when it is unset.
func legacyCompute() Compute {
	return Compute{Workers: int(legacyParallelism.Load())}
}

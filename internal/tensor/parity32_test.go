package tensor

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// Float32 parity tests: the packed-panel kernels must match a float64
// reference within float32 accumulation error, across odd shapes that
// exercise every edge path (partial row panels, partial column panels,
// the 8-wide remainder kernel, k-blocking), in both the assembly and
// pure-Go paths.

// parityEq32 allows float32 rounding accumulated over k products.
func parityEq32(got, want float64, k int) bool {
	tol := 1e-5 * float64(k+1) * (1 + math.Abs(want))
	return math.Abs(got-want) <= tol
}

// withBothKernelPaths32 runs f with the float32 FMA microkernel disabled
// and, when the CPU supports it, enabled as well.
func withBothKernelPaths32(t *testing.T, f func(t *testing.T)) {
	saved := useFMA32
	defer func() { useFMA32 = saved }()
	useFMA32 = false
	t.Run("generic", f)
	if saved {
		useFMA32 = true
		t.Run("fma", f)
	}
}

func fillDet32(x *Tensor, seed int) {
	d := x.Data32()
	for i := range d {
		d[i] = float32((i*31+seed*17)%19)/7 - 1.3
	}
}

// toF64 widens a float32 tensor for reference computation.
func toF64(x *Tensor) *Tensor {
	out := New(x.Shape()...)
	convertSlice(out.Data(), x.Data32())
	return out
}

func checkTensorParity32(t *testing.T, name string, got, want *Tensor, k int) {
	t.Helper()
	gd, wd := got.Data32(), want.Data()
	for i := range gd {
		if !parityEq32(float64(gd[i]), wd[i], k) {
			t.Fatalf("%s: elem %d got %v want %v", name, i, gd[i], wd[i])
		}
	}
}

// parity32Sizes hits interior tiles (mr32/nr32 multiples), sub-tile edges,
// the 8-wide column remainder, and sizes past one k block (kc32 = 256).
var parity32Sizes = []int{1, 3, 5, 8, 17, 33, 64, 300}

func TestGEMM32Parity(t *testing.T) {
	withBothKernelPaths32(t, func(t *testing.T) {
		for _, m := range parity32Sizes {
			for _, k := range parity32Sizes {
				for _, n := range parity32Sizes {
					if m*k*n > 3_000_000 {
						continue // keep the grid fast; 300x300 covers blocking
					}
					a, b := NewOf(Float32, m, k), NewOf(Float32, k, n)
					fillDet32(a, m+2*k+3*n)
					fillDet32(b, n+5*k)
					got := NewOf(Float32, m, n)
					MatMulInto(got, a, b)
					want := naiveMatMul(toF64(a), toF64(b))
					checkTensorParity32(t, fmt.Sprintf("MatMul32 %dx%dx%d", m, k, n), got, want, k)

					at := NewOf(Float32, k, m) // aᵀ operand
					fillDet32(at, 7*m+k)
					MatMulTransAInto(got, at, b)
					checkTensorParity32(t, fmt.Sprintf("TransA32 %dx%dx%d", m, k, n), got,
						naiveMatMul(Transpose(toF64(at)), toF64(b)), k)

					bt := NewOf(Float32, n, k) // bᵀ operand
					fillDet32(bt, 11*n+k)
					MatMulTransBInto(got, a, bt)
					checkTensorParity32(t, fmt.Sprintf("TransB32 %dx%dx%d", m, k, n), got,
						naiveMatMul(toF64(a), Transpose(toF64(bt))), k)
				}
			}
		}
	})
}

func TestIm2ColCol2Im32Parity(t *testing.T) {
	cases := []struct {
		b, c, h, w, kh, kw, stride, pad int
	}{
		{1, 1, 5, 5, 3, 3, 1, 1},
		{2, 3, 7, 5, 3, 3, 2, 1},
		{3, 2, 9, 9, 5, 5, 1, 2},
		{2, 2, 5, 7, 1, 3, 2, 1},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("b%d_c%d_%dx%d_k%dx%d_s%d_p%d", tc.b, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
		x := NewOf(Float32, tc.b, tc.c, tc.h, tc.w)
		fillDet32(x, tc.b+tc.c+tc.h)
		cols := Im2Col(x, tc.kh, tc.kw, tc.stride, tc.pad)
		if cols.DType() != Float32 {
			t.Fatalf("Im2Col32 %s: dtype %v", name, cols.DType())
		}
		wantCols := naiveIm2Col(toF64(x), tc.kh, tc.kw, tc.stride, tc.pad)
		checkTensorParity32(t, "Im2Col32 "+name, cols, wantCols, 0)

		g := NewOf(Float32, cols.Dim(0), cols.Dim(1))
		fillDet32(g, 3*tc.kh+tc.kw)
		img := Col2Im(g, tc.b, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
		wantImg := naiveCol2Im(toF64(g), tc.b, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
		checkTensorParity32(t, "Col2Im32 "+name, img, wantImg, tc.kh*tc.kw)
	}
}

func TestElementwise32(t *testing.T) {
	a := NewOf(Float32, 3, 5)
	b := NewOf(Float32, 3, 5)
	fillDet32(a, 1)
	fillDet32(b, 2)
	sum := Add(a, b)
	if sum.DType() != Float32 {
		t.Fatalf("Add dtype %v", sum.DType())
	}
	for i := range sum.Data32() {
		want := a.Data32()[i] + b.Data32()[i]
		if sum.Data32()[i] != want {
			t.Fatalf("Add32 elem %d: %v want %v", i, sum.Data32()[i], want)
		}
	}
	d := a.Clone()
	d.AddScaled(0.5, b)
	for i := range d.Data32() {
		want := a.Data32()[i] + 0.5*b.Data32()[i]
		if math.Abs(float64(d.Data32()[i]-want)) > 1e-6 {
			t.Fatalf("AddScaled32 elem %d: %v want %v", i, d.Data32()[i], want)
		}
	}
	d.Scale(2)
	if got := d.Sum(); math.Abs(got-2*(a.Sum()+0.5*b.Sum())) > 1e-3 {
		t.Fatalf("Scale/Sum32: %v", got)
	}
	// Round-trip through the float64 state boundary.
	flat := make([]float64, a.Len())
	a.CopyToF64(flat)
	back := NewOf(Float32, 3, 5)
	back.CopyFromF64(flat)
	for i := range back.Data32() {
		if back.Data32()[i] != a.Data32()[i] {
			t.Fatal("CopyToF64/CopyFromF64 round trip changed values")
		}
	}
}

func TestEnsureOfDTypeSwitch(t *testing.T) {
	f64 := Ensure(nil, 4, 4)
	if f64.DType() != Float64 {
		t.Fatalf("Ensure(nil) dtype %v", f64.DType())
	}
	f32 := EnsureOf(Float32, f64, 4, 4)
	if f32 == f64 || f32.DType() != Float32 {
		t.Fatal("EnsureOf must reallocate on dtype switch")
	}
	again := EnsureOf(Float32, f32, 2, 3)
	if again != f32 {
		t.Fatal("EnsureOf should reuse matching-dtype capacity")
	}
	if kept := Ensure(f32, 4, 2); kept != f32 || kept.DType() != Float32 {
		t.Fatal("Ensure must preserve the tensor's dtype")
	}
}

// TestPool32ConcurrentClients exercises the float32 buckets of the shared
// pool the way concurrent float32 clients do; under -race this is the f32
// pool's race-detector test.
func TestPool32ConcurrentClients(t *testing.T) {
	pool := &Pool{}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws := NewWorkspace(pool)
			for round := 0; round < 50; round++ {
				a := ws.GetOf(Float32, 64, 3+g)
				b := ws.GetOf(Float32, 128)
				c := ws.Get(32) // interleave f64 to cover both bucket sets
				mark := float64(g*1000 + round)
				a.Fill(mark)
				b.Fill(-mark)
				c.Fill(mark)
				for _, v := range a.Data32() {
					if v != float32(mark) {
						errs <- fmt.Errorf("goroutine %d round %d: f32 workspace not isolated", g, round)
						return
					}
				}
				for _, v := range b.Data32() {
					if v != float32(-mark) {
						errs <- fmt.Errorf("goroutine %d round %d: f32 workspace not isolated", g, round)
						return
					}
				}
				ws.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSetKernelParallelism(t *testing.T) {
	defer SetKernelParallelism(0)
	SetKernelParallelism(1)
	if w := legacyCompute().workers(); w != 1 {
		t.Fatalf("legacy workers under cap 1: %d", w)
	}
	// The capped path must still be correct.
	a, b := NewOf(Float32, 65, 33), NewOf(Float32, 33, 17)
	fillDet32(a, 1)
	fillDet32(b, 2)
	got := NewOf(Float32, 65, 17)
	MatMulInto(got, a, b)
	SetKernelParallelism(0)
	want := naiveMatMul(toF64(a), toF64(b))
	checkTensorParity32(t, "capped MatMul32", got, want, 33)
}

// TestComputeBudgetParity checks that an explicit Compute budget changes
// only scheduling, never results: every worker count produces bitwise the
// same output as the serial path, for both dtypes.
func TestComputeBudgetParity(t *testing.T) {
	a64, b64 := New(70, 40), New(40, 30)
	a32, b32 := NewOf(Float32, 70, 40), NewOf(Float32, 40, 30)
	fillDet(a64, 3)
	fillDet(b64, 5)
	fillDet32(a32, 3)
	fillDet32(b32, 5)
	ref64 := New(70, 30)
	ref32 := NewOf(Float32, 70, 30)
	tensorCmp := Compute{Workers: 1}
	tensorCmp.MatMulInto(ref64, a64, b64)
	tensorCmp.MatMulInto(ref32, a32, b32)
	for _, w := range []int{0, 2, 3, 7} {
		cmp := Compute{Workers: w}
		got64 := New(70, 30)
		cmp.MatMulInto(got64, a64, b64)
		for i, v := range got64.Data() {
			if v != ref64.Data()[i] {
				t.Fatalf("workers=%d f64 elem %d: %v vs %v", w, i, v, ref64.Data()[i])
			}
		}
		got32 := NewOf(Float32, 70, 30)
		cmp.MatMulInto(got32, a32, b32)
		for i, v := range got32.Data32() {
			if v != ref32.Data32()[i] {
				t.Fatalf("workers=%d f32 elem %d: %v vs %v", w, i, v, ref32.Data32()[i])
			}
		}
	}
}

// Package simnet runs a federation over an explicit message-passing
// transport — in-memory channel pairs or real TCP sockets — with binary
// serialization of every model exchange. Where package fl simulates the
// algorithm with function calls and analytic byte accounting, simnet moves
// actual bytes, so the communication costs reported for Table IV are
// measured rather than computed, and the server/party protocol is
// exercised end to end.
package simnet

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Message type tags.
const (
	msgGlobal       byte = 1
	msgUpdate       byte = 2
	msgShutdown     byte = 3
	msgHello        byte = 4
	msgUpdateChunk  byte = 5
	msgGlobalChunk  byte = 6
	msgGlobalRef    byte = 7
	msgResync       byte = 8
	msgUpdateChunkQ byte = 9
	msgGlobalChunkQ byte = 10
)

// The hello opens with a fixed magic byte and a protocol version, so a
// peer from a different build generation is turned away with a clean
// reason at admission instead of producing a misaligned decode deeper in
// the round. The magic distinguishes "not this protocol at all" (a stray
// client, a pre-versioning build whose hello began with its ID) from
// version skew; the version gates every message layout after the hello,
// so any PR that changes a frame must bump ProtoVersion.
const (
	protoMagic byte = 0xF7
	// ProtoVersion is the newest wire protocol generation this build
	// speaks. Version 1 covers the versioned hello itself plus the
	// chunked downlink frames (GlobalChunkMsg/GlobalRefMsg); version 2
	// adds the hello's rejoin flag and the ResyncMsg rejoin handshake;
	// version 3 adds the hello's min-version byte for range negotiation;
	// version 4 adds the hello's codec-support mask and the quantized
	// chunk frames (UpdateChunkQMsg/GlobalChunkQMsg).
	ProtoVersion byte = 4
	// MinProtoVersion is the oldest generation this build still admits.
	// A version-3+ hello carries the peer's own [min,max] range; the
	// server admits when the ranges overlap and records the negotiated
	// version (the lower of the two maxima), so adjacent generations
	// interoperate during rolling upgrades instead of reject-only
	// admission. Versions 2 through 4 share every raw post-hello frame
	// layout — the quantized frames are new in v4 but only negotiated
	// toward peers whose hello advertises them, with raw float64 the
	// fallback — which is what makes admitting a v2 or v3 party sound.
	MinProtoVersion byte = 2
)

// VersionError reports a hello whose supported protocol range has no
// overlap with this build's. Admission surfaces it through
// ServerListener.OnReject so the operator sees exactly which side is
// stale. GotMin equals Got for pre-range (v2 and older) peers, which
// speak exactly one generation.
type VersionError struct {
	Got    byte // the peer's newest supported version
	GotMin byte // the peer's oldest supported version
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("simnet: peer speaks protocol versions [%d,%d], this build speaks [%d,%d]: no overlap",
		e.GotMin, e.Got, MinProtoVersion, ProtoVersion)
}

// NegotiatedVersion returns the protocol generation the server should
// record for an admitted peer: the newest generation both sides speak.
func NegotiatedVersion(peerMax byte) byte {
	if peerMax < ProtoVersion {
		return peerMax
	}
	return ProtoVersion
}

// maxTokenLen bounds the handshake token on the wire so a hostile hello
// cannot demand an arbitrary allocation.
const maxTokenLen = 4096

// GlobalMsg is the server-to-party payload at the start of a round: the
// global model state and, for SCAFFOLD, the server control variate.
type GlobalMsg struct {
	Round   int
	State   []float64
	Control []float64 // nil unless SCAFFOLD
	// Budget is the kernel compute budget (max goroutines per kernel) the
	// party should train under this round; 0 means uncapped. The server
	// sets it when parties share its process, so K concurrently-training
	// parties split the machine instead of oversubscribing it.
	Budget int
	// Chunk is the update streaming chunk size in float64 elements the
	// server wants replies framed with; 0 asks for one whole UpdateMsg.
	// The server's value is authoritative — parties follow it, so both
	// sides of a deployment never need matching flags.
	Chunk int
}

// HelloMsg is the party-to-server handshake sent once at connect: the
// party's identity, an optional shared-secret token, and what the server
// needs for weighting (dataset size) and stratified sampling (label
// distribution). On the wire it opens with the protocol magic, the
// newest version the party speaks and — from version 3 on — the oldest
// version it still speaks, so both sides can negotiate across a rolling
// upgrade. Marshal stamps the build's ProtoVersion/MinProtoVersion when
// the fields are zero, so ordinary callers never set them (tests craft
// skewed hellos by setting them explicitly).
type HelloMsg struct {
	ID        int
	N         int
	Token     string
	LabelDist []float64
	Version   byte
	// MinVersion is the oldest protocol generation the party still
	// speaks; zero means "same as Version" for pre-range layouts and is
	// stamped with MinProtoVersion when Marshal emits a v3+ hello.
	MinVersion byte
	// Rejoin marks a re-hello from a party that was admitted earlier and
	// lost its connection: the server re-admits it under its old ID (unless
	// it was evicted for a protocol violation) and replies with a ResyncMsg
	// before the next round broadcast.
	Rejoin bool
	// Codecs is the bitmask of wire chunk codecs the sender can decode
	// (bit c set ⇔ wire codec c; see the quant.go identifiers), carried
	// by version-4+ hellos. Marshal stamps the build's full support mask
	// when the field is zero; pre-v4 peers never send one and are
	// treated as raw-f64-only by negotiation.
	Codecs byte
}

// ResyncMsg is the server-to-party reply to a rejoin hello: everything a
// reconnecting party needs to continue as if it never left. Round is the
// last completed round; ExpectTau is the per-round local step count the
// server will validate the party's updates against (FedNova bookkeeping);
// Control is the party's own SCAFFOLD control variate c_i as tracked by
// the server from the party's past control-delta uploads (nil for other
// algorithms), so even a party that lost its local state — a restarted
// process — resumes with the exact c_i it had. MOON's previous-round
// local model is deliberately NOT replayed: the server never stores
// per-party model states (that would be O(parties x state) memory), so a
// rejoined party that lost it cold-starts from the next global model,
// which is MOON's documented first-round behavior.
type ResyncMsg struct {
	Round     int
	ExpectTau int
	Control   []float64
}

// UpdateMsg is the party-to-server payload at the end of local training.
type UpdateMsg struct {
	Round     int
	N         int
	Tau       int
	TrainLoss float64
	Delta     []float64
	DeltaC    []float64 // nil unless SCAFFOLD
}

// UpdateChunkMsg carries one frame of a party's chunked round reply: a
// consecutive slice of the flattened update stream (the state-length
// delta followed, for SCAFFOLD, by the parameter-length control delta).
// Offset indexes the combined stream, Total is its full length, and Last
// marks the final frame. N/Tau/TrainLoss repeat the update's trailer
// metadata on every frame (16 bytes — negligible against the payload) so
// the server validates a stream against its expected meta on the first
// frame, refusing a mismatched update before any of it is staged.
type UpdateChunkMsg struct {
	Round     int
	Offset    int
	Total     int
	N         int
	Tau       int
	Last      bool
	TrainLoss float64
	Chunk     []float64
}

// GlobalChunkMsg carries one frame of the server's chunked round
// broadcast: a consecutive slice of the flattened downlink stream (the
// state vector followed, for SCAFFOLD, by the server control variate),
// symmetric to the uplink's UpdateChunkMsg. Offset indexes the combined
// stream, Total is its full length and CtrlLen the control suffix, so the
// party can split the reassembled buffer without a separate header frame.
// Budget and Chunk repeat the GlobalMsg round metadata on every frame
// (8 bytes — negligible against the payload) so the party validates the
// stream's shape on its first frame.
type GlobalChunkMsg struct {
	Round   int
	Offset  int
	Total   int
	CtrlLen int
	Budget  int
	Chunk   int
	Last    bool
	Payload []float64
}

// UpdateChunkQMsg is the quantized variant of UpdateChunkMsg: the same
// stream header (offsets and Total count float64 elements of the logical
// stream, so reassembly and validation are framing-independent) with the
// payload carried as Codec-encoded bytes plus the chunk's dequantization
// scale. Count is the payload's element count — explicit because int4
// packs two elements per byte, so the byte length alone is ambiguous for
// odd counts. Frames of one stream must all use one codec.
type UpdateChunkQMsg struct {
	Round     int
	Offset    int
	Total     int
	N         int
	Tau       int
	Last      bool
	TrainLoss float64
	Codec     byte
	Count     int
	Scale     float64
	Payload   []byte
}

// GlobalChunkQMsg is the quantized variant of GlobalChunkMsg, with the
// same header semantics and the payload carried as Codec-encoded bytes
// plus the chunk's dequantization scale (see UpdateChunkQMsg for why
// Count is explicit).
type GlobalChunkQMsg struct {
	Round   int
	Offset  int
	Total   int
	CtrlLen int
	Budget  int
	Chunk   int
	Last    bool
	Codec   byte
	Count   int
	Scale   float64
	Payload []byte
}

// validateQuantPayload checks the invariants every quantized frame must
// satisfy on both encode and decode: a genuinely quantized codec (raw
// float64 streams use the raw frame types — one encoding per stream, so
// a mid-stream format change is an error, not a surprise) and a payload
// of exactly the codec's size for Count elements.
func validateQuantPayload(codec byte, count int, payload []byte) error {
	switch codec {
	case wireCodecF32, wireCodecInt8, wireCodecInt4:
	default:
		return fmt.Errorf("simnet: quantized frame with non-quantized codec %s", codecName(codec))
	}
	want, err := quantizedLen(codec, count)
	if err != nil {
		return err
	}
	if len(payload) != want {
		return fmt.Errorf("simnet: quantized payload of %d bytes for %d %s elements, want %d",
			len(payload), count, codecName(codec), want)
	}
	return nil
}

// GlobalRefMsg is the interned form of a round broadcast used between the
// ends of an in-process pipe: the round's state and control vectors are
// published by reference through the pipe's shared slot (see
// Pipe/SendGlobalRef) and only this small descriptor crosses the channel,
// so K co-resident parties read one shared copy of the global state
// instead of decoding K private ones. StateLen/CtrlLen let the receiver
// cross-check the slot against the frame.
type GlobalRefMsg struct {
	Round    int
	StateLen int
	CtrlLen  int
	Budget   int
	Chunk    int
}

// ShutdownMsg tells a party the run is over.
type ShutdownMsg struct{}

// globalWireSize is the serialized size of a monolithic GlobalMsg with the
// given vector lengths: tag + round/budget/chunk + two length-prefixed
// float vectors. Interned pipe broadcasts (SendGlobalRef) account this
// equivalent size so measured CommBytes keeps reporting the protocol's
// logical traffic — what a real deployment would move — rather than the
// in-process shortcut's.
func globalWireSize(stateLen, ctrlLen int) int64 {
	return 1 + 3*4 + (4 + 8*int64(stateLen)) + (4 + 8*int64(ctrlLen))
}

func appendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendFloats(b []byte, v []float64) []byte {
	b = appendUint32(b, uint32(len(v)))
	for _, f := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = appendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// readBytes decodes a length-prefixed byte payload as a view into b —
// zero-copy, bounded by the frame itself (the length is checked against
// the remaining bytes before anything is touched, so a hostile prefix
// cannot demand an allocation).
func readBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := readUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	if len(b) < int(n) {
		return nil, nil, fmt.Errorf("simnet: truncated byte payload (%d of %d bytes)", len(b), n)
	}
	return b[:n:n], b[n:], nil
}

func readUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("simnet: truncated uint32")
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func readFloats(b []byte) ([]float64, []byte, error) {
	return readFloatsInto(nil, b)
}

// readFloatsInto decodes a length-prefixed float vector, reusing buf's
// backing array when it has the capacity (the pooled-chunk fast path) and
// allocating otherwise.
func readFloatsInto(buf []float64, b []byte) ([]float64, []byte, error) {
	n, b, err := readUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	if len(b) < int(n)*8 {
		return nil, nil, fmt.Errorf("simnet: truncated float vector (%d of %d bytes)", len(b), n*8)
	}
	out := buf
	if cap(out) < int(n) {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, b[int(n)*8:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readUint32(b)
	if err != nil {
		return "", nil, err
	}
	if n > maxTokenLen {
		return "", nil, fmt.Errorf("simnet: string of %d bytes exceeds limit", n)
	}
	if len(b) < int(n) {
		return "", nil, fmt.Errorf("simnet: truncated string (%d of %d bytes)", len(b), n)
	}
	return string(b[:n]), b[n:], nil
}

// Marshal encodes a message. Supported types: GlobalMsg, HelloMsg,
// UpdateMsg, UpdateChunkMsg, GlobalChunkMsg, UpdateChunkQMsg,
// GlobalChunkQMsg, GlobalRefMsg, ResyncMsg, ShutdownMsg.
func Marshal(msg any) ([]byte, error) {
	return AppendMarshal(nil, msg)
}

// AppendMarshal encodes msg appended to dst (which may be nil) and
// returns the extended slice — the allocation-free path for per-chunk
// framing, where the caller recycles one buffer across frames.
func AppendMarshal(dst []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case GlobalMsg:
		b := append(dst, msgGlobal)
		b = appendUint32(b, uint32(m.Round))
		b = appendUint32(b, uint32(m.Budget))
		b = appendUint32(b, uint32(m.Chunk))
		b = appendFloats(b, m.State)
		b = appendFloats(b, m.Control)
		return b, nil
	case HelloMsg:
		if len(m.Token) > maxTokenLen {
			return nil, fmt.Errorf("simnet: token of %d bytes exceeds limit", len(m.Token))
		}
		v := m.Version
		if v == 0 {
			v = ProtoVersion
		}
		rejoin := byte(0)
		if m.Rejoin {
			rejoin = 1
		}
		var b []byte
		if v >= 3 {
			minv := m.MinVersion
			if minv == 0 {
				minv = MinProtoVersion
			}
			if v >= 4 {
				codecs := m.Codecs
				if codecs == 0 {
					codecs = codecSupportMask
				}
				b = append(dst, msgHello, protoMagic, v, minv, codecs, rejoin)
			} else {
				// v3 layout: the range bytes without the codec mask,
				// exactly what a v3 build emits.
				b = append(dst, msgHello, protoMagic, v, minv, rejoin)
			}
		} else {
			// Pre-range layout: exactly the bytes a v2 build emits, so
			// tests (and a hypothetical downgrade path) can speak to old
			// peers.
			b = append(dst, msgHello, protoMagic, v, rejoin)
		}
		b = appendUint32(b, uint32(m.ID))
		b = appendUint32(b, uint32(m.N))
		b = appendString(b, m.Token)
		b = appendFloats(b, m.LabelDist)
		return b, nil
	case ResyncMsg:
		b := append(dst, msgResync)
		b = appendUint32(b, uint32(m.Round))
		b = appendUint32(b, uint32(m.ExpectTau))
		b = appendFloats(b, m.Control)
		return b, nil
	case UpdateMsg:
		b := append(dst, msgUpdate)
		b = appendUint32(b, uint32(m.Round))
		b = appendUint32(b, uint32(m.N))
		b = appendUint32(b, uint32(m.Tau))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.TrainLoss))
		b = appendFloats(b, m.Delta)
		b = appendFloats(b, m.DeltaC)
		return b, nil
	case UpdateChunkMsg:
		b := append(dst, msgUpdateChunk)
		b = appendUint32(b, uint32(m.Round))
		b = appendUint32(b, uint32(m.Offset))
		b = appendUint32(b, uint32(m.Total))
		b = appendUint32(b, uint32(m.N))
		b = appendUint32(b, uint32(m.Tau))
		last := byte(0)
		if m.Last {
			last = 1
		}
		b = append(b, last)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.TrainLoss))
		b = appendFloats(b, m.Chunk)
		return b, nil
	case GlobalChunkMsg:
		b := append(dst, msgGlobalChunk)
		b = appendUint32(b, uint32(m.Round))
		b = appendUint32(b, uint32(m.Offset))
		b = appendUint32(b, uint32(m.Total))
		b = appendUint32(b, uint32(m.CtrlLen))
		b = appendUint32(b, uint32(m.Budget))
		b = appendUint32(b, uint32(m.Chunk))
		last := byte(0)
		if m.Last {
			last = 1
		}
		b = append(b, last)
		b = appendFloats(b, m.Payload)
		return b, nil
	case UpdateChunkQMsg:
		if err := validateQuantPayload(m.Codec, m.Count, m.Payload); err != nil {
			return nil, err
		}
		b := append(dst, msgUpdateChunkQ)
		b = appendUint32(b, uint32(m.Round))
		b = appendUint32(b, uint32(m.Offset))
		b = appendUint32(b, uint32(m.Total))
		b = appendUint32(b, uint32(m.N))
		b = appendUint32(b, uint32(m.Tau))
		last := byte(0)
		if m.Last {
			last = 1
		}
		b = append(b, last)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.TrainLoss))
		b = append(b, m.Codec)
		b = appendUint32(b, uint32(m.Count))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Scale))
		b = appendBytes(b, m.Payload)
		return b, nil
	case GlobalChunkQMsg:
		if err := validateQuantPayload(m.Codec, m.Count, m.Payload); err != nil {
			return nil, err
		}
		b := append(dst, msgGlobalChunkQ)
		b = appendUint32(b, uint32(m.Round))
		b = appendUint32(b, uint32(m.Offset))
		b = appendUint32(b, uint32(m.Total))
		b = appendUint32(b, uint32(m.CtrlLen))
		b = appendUint32(b, uint32(m.Budget))
		b = appendUint32(b, uint32(m.Chunk))
		last := byte(0)
		if m.Last {
			last = 1
		}
		b = append(b, last)
		b = append(b, m.Codec)
		b = appendUint32(b, uint32(m.Count))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Scale))
		b = appendBytes(b, m.Payload)
		return b, nil
	case GlobalRefMsg:
		b := append(dst, msgGlobalRef)
		b = appendUint32(b, uint32(m.Round))
		b = appendUint32(b, uint32(m.StateLen))
		b = appendUint32(b, uint32(m.CtrlLen))
		b = appendUint32(b, uint32(m.Budget))
		b = appendUint32(b, uint32(m.Chunk))
		return b, nil
	case ShutdownMsg:
		return append(dst, msgShutdown), nil
	default:
		return nil, fmt.Errorf("simnet: cannot marshal %T", msg)
	}
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("simnet: empty message")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case msgGlobal:
		var m GlobalMsg
		r, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.Round = int(r)
		bg, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.Budget = int(bg)
		ck, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.Chunk = int(ck)
		if m.State, b, err = readFloats(b); err != nil {
			return nil, err
		}
		if m.Control, _, err = readFloats(b); err != nil {
			return nil, err
		}
		return m, nil
	case msgHello:
		var m HelloMsg
		if len(b) < 2 {
			return nil, fmt.Errorf("simnet: truncated hello preamble")
		}
		if b[0] != protoMagic {
			return nil, fmt.Errorf("simnet: hello magic 0x%02x, want 0x%02x (not a niidbench hello, or a pre-versioning peer)", b[0], protoMagic)
		}
		v := b[1]
		minv := v // pre-range peers speak exactly one generation
		b = b[2:]
		if v >= 3 {
			if len(b) < 1 {
				return nil, fmt.Errorf("simnet: truncated hello version range")
			}
			minv = b[0]
			b = b[1:]
		}
		// Admit on range overlap: the peer must still speak something we
		// do ([minv, v] ∩ [MinProtoVersion, ProtoVersion] non-empty; an
		// inverted peer range is skew too). Checked before the v4 codec
		// mask, so a skewed peer always gets the typed version error even
		// off a short preamble.
		if v < MinProtoVersion || minv > ProtoVersion || minv > v {
			return nil, &VersionError{Got: v, GotMin: minv}
		}
		if v >= 4 {
			if len(b) < 1 {
				return nil, fmt.Errorf("simnet: truncated hello codec mask")
			}
			m.Codecs = b[0]
			b = b[1:]
		}
		m.Version = v
		m.MinVersion = minv
		if len(b) < 1 {
			return nil, fmt.Errorf("simnet: truncated hello rejoin flag")
		}
		m.Rejoin = b[0] != 0
		b = b[1:]
		id, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.ID = int(id)
		n, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.N = int(n)
		if m.Token, b, err = readString(b); err != nil {
			return nil, err
		}
		if m.LabelDist, _, err = readFloats(b); err != nil {
			return nil, err
		}
		return m, nil
	case msgUpdate:
		var m UpdateMsg
		r, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.Round = int(r)
		n, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.N = int(n)
		tau, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.Tau = int(tau)
		if len(b) < 8 {
			return nil, fmt.Errorf("simnet: truncated loss")
		}
		m.TrainLoss = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if m.Delta, b, err = readFloats(b); err != nil {
			return nil, err
		}
		if m.DeltaC, _, err = readFloats(b); err != nil {
			return nil, err
		}
		return m, nil
	case msgUpdateChunk:
		m, err := unmarshalChunk(b, nil)
		if err != nil {
			return nil, err
		}
		return m, nil
	case msgGlobalChunk:
		m, err := unmarshalGlobalChunk(b, nil)
		if err != nil {
			return nil, err
		}
		return m, nil
	case msgUpdateChunkQ:
		m, err := unmarshalChunkQ(b)
		if err != nil {
			return nil, err
		}
		return m, nil
	case msgGlobalChunkQ:
		m, err := unmarshalGlobalChunkQ(b)
		if err != nil {
			return nil, err
		}
		return m, nil
	case msgGlobalRef:
		var m GlobalRefMsg
		fields := [5]*int{&m.Round, &m.StateLen, &m.CtrlLen, &m.Budget, &m.Chunk}
		for _, f := range fields {
			v, rest, err := readUint32(b)
			if err != nil {
				return nil, err
			}
			*f = int(v)
			b = rest
		}
		return m, nil
	case msgResync:
		var m ResyncMsg
		r, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.Round = int(r)
		tau, b, err := readUint32(b)
		if err != nil {
			return nil, err
		}
		m.ExpectTau = int(tau)
		if m.Control, _, err = readFloats(b); err != nil {
			return nil, err
		}
		return m, nil
	case msgShutdown:
		return ShutdownMsg{}, nil
	default:
		return nil, fmt.Errorf("simnet: unknown message tag %d", tag)
	}
}

// UnmarshalChunkInto decodes an UpdateChunkMsg, reusing buf's backing
// array for the payload when it has the capacity. It rejects any other
// message type, so the server's per-conn chunk receivers never allocate
// for well-behaved peers.
func UnmarshalChunkInto(b []byte, buf []float64) (UpdateChunkMsg, error) {
	if len(b) == 0 {
		return UpdateChunkMsg{}, fmt.Errorf("simnet: empty message")
	}
	if b[0] != msgUpdateChunk {
		return UpdateChunkMsg{}, fmt.Errorf("simnet: expected update chunk, got message tag %d", b[0])
	}
	return unmarshalChunk(b[1:], buf)
}

// UnmarshalGlobalChunkInto decodes a GlobalChunkMsg, reusing buf's backing
// array for the payload when it has the capacity — the party-side fast
// path, where buf is a view of the round's assembly buffer at the expected
// offset so an in-order frame decodes straight into place. It rejects any
// other message type.
func UnmarshalGlobalChunkInto(b []byte, buf []float64) (GlobalChunkMsg, error) {
	if len(b) == 0 {
		return GlobalChunkMsg{}, fmt.Errorf("simnet: empty message")
	}
	if b[0] != msgGlobalChunk {
		return GlobalChunkMsg{}, fmt.Errorf("simnet: expected global chunk, got message tag %d", b[0])
	}
	return unmarshalGlobalChunk(b[1:], buf)
}

// unmarshalGlobalChunk decodes the body (everything after the tag byte) of
// a GlobalChunkMsg, decoding the payload into buf when it fits.
func unmarshalGlobalChunk(b []byte, buf []float64) (GlobalChunkMsg, error) {
	var m GlobalChunkMsg
	fields := [6]*int{&m.Round, &m.Offset, &m.Total, &m.CtrlLen, &m.Budget, &m.Chunk}
	for _, f := range fields {
		v, rest, err := readUint32(b)
		if err != nil {
			return m, err
		}
		*f = int(v)
		b = rest
	}
	if len(b) < 1 {
		return m, fmt.Errorf("simnet: truncated last marker")
	}
	m.Last = b[0] != 0
	b = b[1:]
	var err error
	if m.Payload, _, err = readFloatsInto(buf, b); err != nil {
		return m, err
	}
	return m, nil
}

// readQuantTrailer decodes the codec/count/scale/payload tail shared by
// both quantized frame types and validates it.
func readQuantTrailer(b []byte) (codec byte, count int, scale float64, payload []byte, err error) {
	if len(b) < 1 {
		return 0, 0, 0, nil, fmt.Errorf("simnet: truncated codec byte")
	}
	codec, b = b[0], b[1:]
	n, b, err := readUint32(b)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	count = int(n)
	if len(b) < 8 {
		return 0, 0, 0, nil, fmt.Errorf("simnet: truncated quantization scale")
	}
	scale = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	if payload, _, err = readBytes(b); err != nil {
		return 0, 0, 0, nil, err
	}
	if err := validateQuantPayload(codec, count, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	return codec, count, scale, payload, nil
}

// unmarshalChunkQ decodes the body of an UpdateChunkQMsg. The payload is
// a zero-copy view into b.
func unmarshalChunkQ(b []byte) (UpdateChunkQMsg, error) {
	var m UpdateChunkQMsg
	fields := [5]*int{&m.Round, &m.Offset, &m.Total, &m.N, &m.Tau}
	for _, f := range fields {
		v, rest, err := readUint32(b)
		if err != nil {
			return m, err
		}
		*f = int(v)
		b = rest
	}
	if len(b) < 1 {
		return m, fmt.Errorf("simnet: truncated last marker")
	}
	m.Last = b[0] != 0
	b = b[1:]
	if len(b) < 8 {
		return m, fmt.Errorf("simnet: truncated loss")
	}
	m.TrainLoss = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	var err error
	if m.Codec, m.Count, m.Scale, m.Payload, err = readQuantTrailer(b); err != nil {
		return m, err
	}
	return m, nil
}

// unmarshalGlobalChunkQ decodes the body of a GlobalChunkQMsg. The
// payload is a zero-copy view into b.
func unmarshalGlobalChunkQ(b []byte) (GlobalChunkQMsg, error) {
	var m GlobalChunkQMsg
	fields := [6]*int{&m.Round, &m.Offset, &m.Total, &m.CtrlLen, &m.Budget, &m.Chunk}
	for _, f := range fields {
		v, rest, err := readUint32(b)
		if err != nil {
			return m, err
		}
		*f = int(v)
		b = rest
	}
	if len(b) < 1 {
		return m, fmt.Errorf("simnet: truncated last marker")
	}
	m.Last = b[0] != 0
	b = b[1:]
	var err error
	if m.Codec, m.Count, m.Scale, m.Payload, err = readQuantTrailer(b); err != nil {
		return m, err
	}
	return m, nil
}

// dequantInto dequantizes a validated quantized payload into buf (reused
// when it has the capacity, like readFloatsInto). The allocation is
// bounded: count was validated against the payload's actual byte length,
// which the transport's receive limit already capped.
func dequantInto(buf []float64, codec byte, count int, scale float64, payload []byte) ([]float64, error) {
	if count == 0 {
		return nil, nil
	}
	out := buf
	if cap(out) < count {
		out = make([]float64, count)
	}
	out = out[:count]
	if err := dequantizeChunk(out, codec, payload, scale); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeUpdateFrameInto decodes one uplink chunk frame — raw
// (UpdateChunkMsg) or quantized (UpdateChunkQMsg, dequantized into buf)
// — into the raw form every downstream consumer handles, plus the wire
// codec the frame used so stream assembly can enforce codec constancy.
func decodeUpdateFrameInto(raw []byte, buf []float64) (UpdateChunkMsg, byte, error) {
	if len(raw) == 0 {
		return UpdateChunkMsg{}, 0, fmt.Errorf("simnet: empty message")
	}
	switch raw[0] {
	case msgUpdateChunk:
		m, err := unmarshalChunk(raw[1:], buf)
		return m, wireCodecF64, err
	case msgUpdateChunkQ:
		q, err := unmarshalChunkQ(raw[1:])
		if err != nil {
			return UpdateChunkMsg{}, 0, err
		}
		chunk, err := dequantInto(buf, q.Codec, q.Count, q.Scale, q.Payload)
		if err != nil {
			return UpdateChunkMsg{}, 0, err
		}
		return UpdateChunkMsg{
			Round: q.Round, Offset: q.Offset, Total: q.Total,
			N: q.N, Tau: q.Tau, Last: q.Last, TrainLoss: q.TrainLoss,
			Chunk: chunk,
		}, q.Codec, nil
	default:
		return UpdateChunkMsg{}, 0, fmt.Errorf("simnet: expected update chunk, got message tag %d", raw[0])
	}
}

/// decodeGlobalFrameInto is decodeUpdateFrameInto's downlink twin: one
// broadcast chunk frame, raw or quantized, decoded into the raw form
// (dequantizing into buf) plus the frame's wire codec.
func decodeGlobalFrameInto(raw []byte, buf []float64) (GlobalChunkMsg, byte, error) {
	if len(raw) == 0 {
		return GlobalChunkMsg{}, 0, fmt.Errorf("simnet: empty message")
	}
	switch raw[0] {
	case msgGlobalChunk:
		m, err := unmarshalGlobalChunk(raw[1:], buf)
		return m, wireCodecF64, err
	case msgGlobalChunkQ:
		q, err := unmarshalGlobalChunkQ(raw[1:])
		if err != nil {
			return GlobalChunkMsg{}, 0, err
		}
		payload, err := dequantInto(buf, q.Codec, q.Count, q.Scale, q.Payload)
		if err != nil {
			return GlobalChunkMsg{}, 0, err
		}
		return GlobalChunkMsg{
			Round: q.Round, Offset: q.Offset, Total: q.Total,
			CtrlLen: q.CtrlLen, Budget: q.Budget, Chunk: q.Chunk,
			Last: q.Last, Payload: payload,
		}, q.Codec, nil
	default:
		return GlobalChunkMsg{}, 0, fmt.Errorf("simnet: expected global chunk, got message tag %d", raw[0])
	}
}

// unmarshalChunk decodes the body (everything after the tag byte) of an
// UpdateChunkMsg, decoding the payload into buf when it fits.
func unmarshalChunk(b []byte, buf []float64) (UpdateChunkMsg, error) {
	var m UpdateChunkMsg
	fields := [5]*int{&m.Round, &m.Offset, &m.Total, &m.N, &m.Tau}
	for _, f := range fields {
		v, rest, err := readUint32(b)
		if err != nil {
			return m, err
		}
		*f = int(v)
		b = rest
	}
	if len(b) < 1 {
		return m, fmt.Errorf("simnet: truncated last marker")
	}
	m.Last = b[0] != 0
	b = b[1:]
	if len(b) < 8 {
		return m, fmt.Errorf("simnet: truncated loss")
	}
	m.TrainLoss = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	var err error
	if m.Chunk, _, err = readFloatsInto(buf, b); err != nil {
		return m, err
	}
	return m, nil
}

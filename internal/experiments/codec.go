package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/niid-bench/niidbench/internal/data"
	"github.com/niid-bench/niidbench/internal/fl"
	"github.com/niid-bench/niidbench/internal/nn"
	"github.com/niid-bench/niidbench/internal/partition"
	"github.com/niid-bench/niidbench/internal/report"
	"github.com/niid-bench/niidbench/internal/rng"
	"github.com/niid-bench/niidbench/internal/simnet"
)

func init() {
	register(Experiment{ID: "codec", Title: "Quantized wire codecs: accuracy vs communication bytes at equal rounds", Run: runCodec})
}

// runCodec is the accuracy-vs-bytes sweep for the quantized chunk codecs:
// the identical federation — same partition, same seeds, same round
// schedule — runs over loopback TCP once per wire codec, and the table
// reports what each lossy wire costs in final accuracy against what it
// saves in measured bytes. CommBytes is counted from the actual frames on
// the wire (quantized parties serialize for real, no interning shortcut),
// so the reduction column is the on-wire truth, not an analytic estimate.
// The paper's Table IV reports communication size per algorithm at f64;
// this sweep adds the codec axis its Section V leaves open.
func runCodec(h *Harness) error {
	ds := "adult"
	if len(h.opt.Datasets) == 1 {
		ds = h.opt.Datasets[0]
	}
	train, test, err := h.Dataset(ds)
	if err != nil {
		return err
	}
	spec, err := data.Model(ds)
	if err != nil {
		return err
	}
	strat := partition.Strategy{Kind: partition.LabelDirichlet, Beta: 0.5}
	parties := h.p.parties
	_, locals, err := strat.Split(train, parties, rng.New(h.opt.Seed+17))
	if err != nil {
		return err
	}
	codecs := []fl.Codec{fl.CodecF64, fl.CodecF32, fl.CodecInt8, fl.CodecInt4}
	fmt.Fprintf(h.Out, "%s, %s, %d parties, %d rounds over loopback TCP, codec negotiated at the hello\n\n",
		ds, strat, parties, h.p.rounds)
	cfg := fl.Config{
		Algorithm:   fl.FedAvg,
		Rounds:      h.p.rounds,
		LocalEpochs: h.p.epochs,
		BatchSize:   h.p.batch,
		LR:          lrFor(ds),
		Momentum:    0.9,
		Seed:        h.opt.Seed,
		EvalEvery:   h.p.evalEvery,
		ChunkSize:   512, // the chunk frame is the quantization unit
	}
	tbl := report.NewTable("accuracy vs bytes", "codec", "acc", "Δacc vs f64", "total bytes", "bytes/round", "reduction", "wall")
	var baseAcc float64
	var baseBytes int64
	for i, codec := range codecs {
		c := cfg
		c.Codec = codec
		wall, res, err := runCodecCell(c, spec, locals, test)
		if err != nil {
			return fmt.Errorf("codec %s: %w", codec, err)
		}
		if i == 0 {
			baseAcc, baseBytes = res.FinalAccuracy, res.TotalCommBytes
		}
		tbl.AddRow(string(codec),
			report.Percent(res.FinalAccuracy),
			fmt.Sprintf("%+.2fpt", (res.FinalAccuracy-baseAcc)*100),
			report.Bytes(float64(res.TotalCommBytes)),
			report.Bytes(res.CommBytesPerRound),
			fmt.Sprintf("%.2fx", float64(baseBytes)/float64(res.TotalCommBytes)),
			wall.Round(time.Millisecond).String())
	}
	tbl.Render(h.Out)
	fmt.Fprintln(h.Out, "\nexpected shape: f32 halves the bytes at no visible accuracy cost; int8 cuts them ~7x within a point of f64; int4 is the aggressive end — ~13x fewer bytes, worth it only when the link, not the math, is the bottleneck")
	return nil
}

// runCodecCell federates once over loopback TCP with every party dialing
// clean; the measured CommBytes is the cell's payload metric, wall-clock
// is reported for context only.
func runCodecCell(cfg fl.Config, spec nn.ModelSpec, locals []*data.Dataset, test *data.Dataset) (time.Duration, *fl.Result, error) {
	ln, err := simnet.Listen("127.0.0.1:0")
	if err != nil {
		return 0, nil, err
	}
	defer ln.Close()
	ln.RoundTimeout = 30 * time.Second
	addr := ln.Addr()
	var wg sync.WaitGroup
	partyErrs := make([]error, len(locals))
	start := time.Now()
	for i, dsl := range locals {
		wg.Add(1)
		go func(i int, dsl *data.Dataset) {
			defer wg.Done()
			partyErrs[i] = simnet.DialPartyOpts(addr, i, dsl, spec, cfg, cfg.Seed+uint64(i)*7919+13, simnet.PartyOptions{})
		}(i, dsl)
	}
	res, serveErr := ln.AcceptAndRun(len(locals), cfg, spec, test)
	wall := time.Since(start)
	_ = ln.Close()
	wg.Wait()
	if serveErr != nil {
		return 0, nil, serveErr
	}
	for i, err := range partyErrs {
		if err != nil {
			return 0, nil, fmt.Errorf("party %d: %w", i, err)
		}
	}
	return wall, res, nil
}

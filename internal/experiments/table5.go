package experiments

import (
	"fmt"

	"github.com/niid-bench/niidbench/internal/fl"
	"github.com/niid-bench/niidbench/internal/metrics"
	"github.com/niid-bench/niidbench/internal/partition"
	"github.com/niid-bench/niidbench/internal/report"
)

func init() {
	register(Experiment{
		ID:    "table5",
		Title: "Mixed types of skew on CIFAR-10 (Table V)",
		Run:   runTable5,
	})
}

// runTable5 reproduces the paper's two mixed-skew cases on CIFAR-10-like
// data: (1) label skew + feature noise, (2) quantity skew + feature noise,
// each compared against its single-skew components.
func runTable5(h *Harness) error {
	ds := "cifar10"
	if len(h.opt.Datasets) == 1 {
		ds = h.opt.Datasets[0]
	}
	type rowSpec struct {
		label    string
		strategy partition.Strategy
	}
	cases := []struct {
		title string
		rows  []rowSpec
	}{
		{
			title: "Case 1: label skew + feature skew",
			rows: []rowSpec{
				{"label skew", partition.Strategy{Kind: partition.LabelDirichlet, Beta: 0.5}},
				{"feature skew", partition.Strategy{Kind: partition.FeatureNoise, NoiseSigma: 0.1}},
				{"label + feature", partition.Strategy{Kind: partition.LabelDirichlet, Beta: 0.5, NoiseSigma: 0.1}},
			},
		},
		{
			title: "Case 2: feature skew + quantity skew",
			rows: []rowSpec{
				{"feature skew", partition.Strategy{Kind: partition.FeatureNoise, NoiseSigma: 0.1}},
				{"quantity skew", partition.Strategy{Kind: partition.Quantity, Beta: 0.5}},
				{"feature + quantity", partition.Strategy{Kind: partition.Quantity, Beta: 0.5, NoiseSigma: 0.1}},
			},
		},
	}
	for _, c := range cases {
		tb := report.NewTable(c.title+" ("+ds+")",
			"setting", "FedAvg", "FedProx", "SCAFFOLD", "FedNova")
		for _, row := range c.rows {
			cells := []string{row.label}
			for _, algo := range fl.Algorithms() {
				accs, err := h.RunTrials(Setting{Dataset: ds, Strategy: row.strategy, Algo: algo})
				if err != nil {
					return fmt.Errorf("%s/%s: %w", row.label, algo, err)
				}
				cells = append(cells, metrics.Summarize(accs).String())
			}
			tb.AddRow(cells...)
		}
		tb.Render(h.Out)
		fmt.Fprintln(h.Out)
	}
	fmt.Fprintln(h.Out, "paper shape: mixed skew degrades accuracy below each single skew; quantity skew wrecks SCAFFOLD/FedNova either way")
	return nil
}

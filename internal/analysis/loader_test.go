package analysis

import "testing"

// TestLoadRealPackageCleanUnderSuite loads the wire-codec package from
// the real module — test files included, whole stdlib closure
// type-checked from source — and runs the full analyzer suite over it.
// The merged tree must stay niidlint-clean, so any finding here is a
// regression in either the package or an analyzer.
func TestLoadRealPackageCleanUnderSuite(t *testing.T) {
	pkgs, err := SharedLoader().LoadPackages("github.com/niid-bench/niidbench/internal/simnet")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Name != "simnet" {
		t.Fatalf("package name %q, want simnet", pkg.Name)
	}
	hasTestFile := false
	for _, f := range pkg.Syntax {
		name := pkg.Fset.Position(f.Pos()).Filename
		if len(name) > 8 && name[len(name)-8:] == "_test.go" {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Fatal("target package loaded without its in-package test files; codeccheck's coverage rules need them")
	}
	diags, err := RunAnalyzers(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding on the real tree: %s", d)
	}
}

package fl

import "testing"

// Test files are exempt: assertion order does not reach a fold.
func TestMapRangeAllowedInTests(t *testing.T) {
	m := map[int]float64{1: 1, 2: 2}
	for k, v := range m {
		if float64(k) != v {
			t.Fatal(k, v)
		}
	}
}
